// Structure-aware wire fuzz campaign (ISSUE 6 tentpole, part 1).
//
// Four protocol arms (length-prefixed demo, delimiter-heavy chat, the
// torture spec, Modbus requests), each compiled with per-field
// obfuscation, each hammered with mutants aimed at the wire *structure*:
// bit flips on region edges, skewed length/counter holders, corrupted and
// prefix-colliding delimiters, truncations at every region edge, splices
// of two valid frames. Every input runs through FuzzRunner::check, which
// enforces the full hostile-bytes contract: no crash, per-input deadline,
// pooled-node count back to baseline, and one-shot == chunk-split-resumed
// verdict (kind, consumed, tree).
//
// Reproduction: every failure message carries the campaign RNG seed;
// rerun with PROTOOBF_FUZZ_SEED=<seed>. Scale with PROTOOBF_FUZZ_ITERS
// and PROTOOBF_FUZZ_REPLAYS.
#include <gtest/gtest.h>

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "core/protoobf.hpp"
#include "fuzz/mutator.hpp"
#include "fuzz/runner.hpp"
#include "fuzz_support.hpp"
#include "native/cache.hpp"
#include "runtime/parse.hpp"
#include "session/protocol_cache.hpp"
#include "session/session.hpp"
#include "stream/channel.hpp"
#include "stream/stream_reader.hpp"
#include "util/rng.hpp"

namespace protoobf {
namespace {

using fuzz::FuzzRunner;
using fuzz::Mutant;
using fuzz::Verdict;
using fuzz::WireMutator;

struct Arm {
  std::string name;
  std::unique_ptr<ObfuscatedProtocol> protocol;
  std::unique_ptr<WireMutator> mutator;
  std::unique_ptr<FuzzRunner> runner;
  std::shared_ptr<const native::NativeProtocol> native;  // keeps .so mapped
  bool whole_message = false;
};

/// Builds the native==interpreter agreement arm for `protocol` when the
/// toolchain can produce loadable units in this build mode; logs the skip
/// reason otherwise (e.g. sanitizer builds whose .so cannot be dlopen'd).
std::shared_ptr<const native::NativeProtocol> native_arm(
    const ObfuscatedProtocol& protocol, std::string_view spec,
    const ObfuscationConfig& cfg, std::string_view name) {
  if (!native::NativeCompiler::toolchain_available()) {
    static bool logged = false;
    if (!logged) {
      logged = true;
      std::printf("[ info ] native agreement arm skipped: %s\n",
                  native::NativeCompiler::toolchain_status().c_str());
    }
    return nullptr;
  }
  static native::NativeCache cache;
  auto backend =
      cache.get_or_compile(protocol, ProtocolCache::hash_spec(spec), cfg);
  EXPECT_TRUE(backend.ok())
      << name << ": native build failed: " << backend.error().message;
  return backend.ok() ? *backend : nullptr;
}

/// Compiles every registry spec at its registered obfuscation depth and
/// builds its mutation bases. Prefix-parse mode is decided by the compiled
/// wire graph itself: non-stream-safe arms (a trailing `end` terminal that
/// cannot self-delimit) run whole-message, everything else gets the
/// chunk-split resume replay.
std::vector<Arm> build_arms(std::uint64_t seed) {
  std::vector<Arm> arms;
  for (const fuzztest::SpecEntry& entry : fuzztest::spec_registry()) {
    auto graph = Framework::load_spec(entry.spec);
    EXPECT_TRUE(graph.ok()) << entry.name << ": " << graph.error().message;
    if (!graph.ok()) continue;

    ObfuscationConfig cfg;
    cfg.seed = 90125;
    cfg.per_node = entry.per_node;
    auto protocol = Framework::generate(*graph, cfg);
    EXPECT_TRUE(protocol.ok())
        << entry.name << ": " << protocol.error().message;
    if (!protocol.ok()) continue;

    Arm arm;
    arm.name = std::string(entry.name);
    arm.protocol = std::make_unique<ObfuscatedProtocol>(std::move(*protocol));
    arm.whole_message = !stream_safe(arm.protocol->wire_graph()).ok();

    WireMutator::Config mut_cfg;
    if (entry.name == "modbus-request") {
      // The generic generator rarely hits the function-code constraints;
      // use the paper's workload driver instead.
      mut_cfg.generator = [](const Graph& g, Rng& rng) {
        return ast::clone(modbus::random_request(g, rng).root());
      };
    }
    auto mutator = WireMutator::create(*arm.protocol, seed ^ arms.size(),
                                       mut_cfg);
    EXPECT_TRUE(mutator.ok()) << entry.name << ": " << mutator.error().message;
    if (!mutator.ok()) continue;
    arm.mutator = std::make_unique<WireMutator>(std::move(*mutator));

    FuzzRunner::Config run_cfg;
    run_cfg.whole_message = arm.whole_message;
    arm.runner = std::make_unique<FuzzRunner>(*arm.protocol, run_cfg);
    arm.native = native_arm(*arm.protocol, entry.spec, cfg, entry.name);
    if (arm.native != nullptr) {
      arm.runner->set_native_backend(arm.native.get());
    }
    arms.push_back(std::move(arm));
  }
  return arms;
}

TEST(WireFuzz, CampaignHoldsEveryInvariantOnEveryArm) {
  const std::uint64_t seed = fuzztest::fuzz_seed(0xF0221);
  const std::uint64_t iters =
      fuzztest::env_u64("PROTOOBF_FUZZ_ITERS", 10000);
  SCOPED_TRACE(fuzztest::seed_note(seed));

  std::vector<Arm> arms = build_arms(seed);
  ASSERT_EQ(arms.size(), fuzztest::spec_registry().size());

  const std::uint64_t per_arm = iters / arms.size() + 1;
  std::uint64_t chunk_replays = 0;
  for (Arm& arm : arms) {
    Rng chunks(seed ^ 0xC4A7 ^ std::hash<std::string>{}(arm.name));
    for (std::uint64_t i = 0; i < per_arm; ++i) {
      const Mutant m = arm.mutator->next();
      const std::string violation = arm.runner->check(m.wire, chunks);
      ASSERT_EQ(violation, "")
          << arm.name << " iter " << i << " strategy " << m.strategy << "\n"
          << hexdump(m.wire) << fuzztest::seed_note(seed);
    }

    const FuzzRunner::Totals& t = arm.runner->totals();
    EXPECT_EQ(t.violations, 0u) << arm.name;
    EXPECT_EQ(t.inputs, per_arm) << arm.name;
    // The mutants must actually exercise the whole taxonomy — a campaign
    // that only ever sees Malformed is corrupting too hard to probe the
    // interesting paths.
    EXPECT_GT(t.parsed, 0u) << arm.name;
    EXPECT_GT(t.malformed, 0u) << arm.name;
    if (!arm.whole_message) {
      EXPECT_GT(t.truncated, 0u) << arm.name;
      chunk_replays += t.inputs;
      // The replays must genuinely ride the suspend/restore machinery.
      EXPECT_GT(arm.runner->resume_stats().resumed, 0u) << arm.name;
    }

    // Campaign-level memory bound: every tree went back to the pool, and
    // slab growth reflects the deepest single parse, not the input count.
    EXPECT_EQ(arm.runner->arena().nodes().stats().live, 0u) << arm.name;
    EXPECT_LE(arm.runner->arena().nodes().stats().slabs, 16u) << arm.name;
  }
  // ISSUE 6 acceptance: >= 2k chunk-split resume replays in the default
  // campaign (every stream-safe check() replays its input chunked).
  EXPECT_GE(chunk_replays, std::min<std::uint64_t>(iters / 5, 2000));
}

TEST(WireFuzz, TruncationOfValidWireIsNeverMalformed) {
  const std::uint64_t seed = fuzztest::fuzz_seed(0xF0222);
  SCOPED_TRACE(fuzztest::seed_note(seed));

  for (Arm& arm : build_arms(seed)) {
    if (arm.whole_message) continue;  // prefix taxonomy needs prefix parse
    for (std::size_t f = 0; f < arm.mutator->seeds().size(); ++f) {
      for (const Mutant& cut : arm.mutator->truncation_sweep(f)) {
        const Verdict v = arm.runner->one_shot(cut.wire);
        EXPECT_NE(v.kind, Verdict::Kind::Malformed)
            << arm.name << " frame " << f << " cut at " << cut.wire.size()
            << " bytes misclassified: a prefix of a valid frame parses "
               "once the rest arrives\n"
            << hexdump(cut.wire);
      }
    }
  }
}

TEST(WireFuzz, GarbageAfterAValidFrameStaysUnconsumed) {
  const std::uint64_t seed = fuzztest::fuzz_seed(0xF0223);
  SCOPED_TRACE(fuzztest::seed_note(seed));
  Rng rng(seed);

  for (Arm& arm : build_arms(seed)) {
    if (arm.whole_message) continue;
    for (const fuzz::SeedFrame& frame : arm.mutator->seeds()) {
      Bytes wire = frame.wire;
      const std::size_t extra = 1 + rng.below(16);
      for (std::size_t i = 0; i < extra; ++i) wire.push_back(rng.byte());
      const Verdict v = arm.runner->one_shot(wire);
      ASSERT_EQ(v.kind, Verdict::Kind::Parsed)
          << arm.name << ": a valid frame stopped parsing when followed by "
          << extra << " garbage bytes\n" << hexdump(wire);
      EXPECT_EQ(v.consumed, frame.wire.size())
          << arm.name << ": the prefix parse ran past the frame end into "
             "trailing garbage";
    }
  }
}

// --- mutants through the streaming stack ------------------------------------

/// Obfuscated frame protocol for the reader-level suite (the net tests'
/// seed-search idiom: stream-safe and framer-constructible).
std::shared_ptr<const ObfuscatedProtocol> find_framing() {
  constexpr std::string_view kFrameSpec = R"(
protocol Frame
frame: seq end {
  flen: terminal fixed(4)
  fbody: terminal length(flen)
}
)";
  auto graph = Framework::load_spec(kFrameSpec);
  EXPECT_TRUE(graph.ok());
  for (std::uint64_t seed = 13; seed < 13 + 64; ++seed) {
    ObfuscationConfig cfg;
    cfg.seed = seed;
    cfg.per_node = 2;
    auto protocol = Framework::generate(*graph, cfg);
    if (!protocol.ok()) continue;
    auto shared =
        std::make_shared<const ObfuscatedProtocol>(std::move(*protocol));
    if (!stream_safe(shared->wire_graph()).ok()) continue;
    if (ObfuscatedFramer::create(shared).ok()) return shared;
  }
  return nullptr;
}

TEST(StreamFuzz, ReaderSurvivesMutantFramesUnderRandomChunkSplits) {
  const std::uint64_t seed = fuzztest::fuzz_seed(0xF0224);
  const std::uint64_t replays =
      fuzztest::env_u64("PROTOOBF_FUZZ_REPLAYS", 2000);
  SCOPED_TRACE(fuzztest::seed_note(seed));

  auto framing = find_framing();
  ASSERT_NE(framing, nullptr) << "no stream-safe frame seed found";
  auto mutator = WireMutator::create(*framing, seed);
  ASSERT_TRUE(mutator.ok()) << mutator.error().message;

  ObfuscatedFramer::Config framer_cfg;
  framer_cfg.max_frame_size = 64 * 1024;
  auto framer = ObfuscatedFramer::create(framing, framer_cfg).value();
  StreamReader reader(*framer);

  Rng rng(seed ^ 0x5712);
  for (std::uint64_t i = 0; i < replays; ++i) {
    // Each replay is an independent stream: mutant frame bytes trickled
    // in random chunks, frames drained after every chunk, decode errors
    // answered with resync() — the reader must never wedge or grow its
    // reassembly buffer past the bytes it was actually fed.
    reader.reset();
    const Mutant m = mutator->next();
    std::size_t fed = 0;
    std::size_t guard = 0;
    while (fed < m.wire.size()) {
      const std::size_t step =
          std::min<std::size_t>(m.wire.size() - fed,
                                static_cast<std::size_t>(rng.between(1, 9)));
      reader.feed(BytesView(m.wire).subspan(fed, step));
      fed += step;
      for (;;) {
        ASSERT_LT(++guard, 100000u)
            << "reader spun on iter " << i << " strategy " << m.strategy
            << "\n" << hexdump(m.wire) << fuzztest::seed_note(seed);
        if (reader.next_frame().has_value()) continue;
        if (reader.failed()) {
          reader.resync();
          continue;
        }
        break;
      }
      reader.release_payloads();
      ASSERT_LE(reader.reassembly_size(), m.wire.size() + 16)
          << "reassembly ballooned on iter " << i << " strategy "
          << m.strategy << "\n" << fuzztest::seed_note(seed);
    }
  }

  // The stream must still work after the whole campaign: a fresh valid
  // frame round-trips through the same reader.
  reader.reset();
  Bytes framed;
  const Bytes payload = {'o', 'k'};
  ASSERT_TRUE(framer->encode(payload, framed).ok());
  reader.feed(framed);
  auto out = reader.next_frame();
  ASSERT_TRUE(out.has_value());
  EXPECT_TRUE(!reader.failed());
  EXPECT_EQ(Bytes(out->begin(), out->end()), payload);
}

TEST(StreamFuzz, ChannelSurvivesMutantPayloadsInsideValidFrames) {
  const std::uint64_t seed = fuzztest::fuzz_seed(0xF0225);
  SCOPED_TRACE(fuzztest::seed_note(seed));

  // Mutated *message* bytes inside intact length-prefixed frames: framing
  // stays healthy, per-message parse errors surface through receive(),
  // and the channel keeps going — the documented Channel contract, here
  // under adversarial payloads instead of hand-picked ones.
  auto graph = Framework::load_spec(fuzztest::kNetDemoSpec);
  ASSERT_TRUE(graph.ok());
  ObfuscationConfig cfg;
  cfg.seed = 90125;
  cfg.per_node = 2;
  auto compiled = Framework::generate(*graph, cfg);
  ASSERT_TRUE(compiled.ok());
  auto protocol =
      std::make_shared<const ObfuscatedProtocol>(std::move(*compiled));
  auto mutator = WireMutator::create(*protocol, seed);
  ASSERT_TRUE(mutator.ok()) << mutator.error().message;

  Session session(protocol);
  LengthPrefixFramer framer;
  Channel channel(session, framer);

  Rng rng(seed ^ 0xCAFE);
  constexpr std::uint64_t kPayloads = 512;
  std::uint64_t delivered = 0;
  for (std::uint64_t i = 0; i < kPayloads; ++i) {
    const Mutant m = mutator->next();
    Bytes framed;
    ASSERT_TRUE(framer.encode(m.wire, framed).ok());
    std::size_t fed = 0;
    while (fed < framed.size()) {
      const std::size_t step =
          std::min<std::size_t>(framed.size() - fed,
                                static_cast<std::size_t>(rng.between(1, 13)));
      channel.on_bytes(BytesView(framed).subspan(fed, step));
      fed += step;
      while (auto msg = channel.receive()) {
        ++delivered;  // parse result per message — ok or error, both fine
      }
    }
    ASSERT_FALSE(channel.failed())
        << "intact framing must never fail the channel; iter " << i
        << " strategy " << m.strategy << "\n" << fuzztest::seed_note(seed);
  }
  EXPECT_EQ(delivered, kPayloads);

  // And a well-formed message still round-trips on the same channel.
  const fuzz::SeedFrame& valid = mutator->seeds().front();
  Bytes framed;
  ASSERT_TRUE(framer.encode(valid.wire, framed).ok());
  channel.on_bytes(framed);
  auto msg = channel.receive();
  ASSERT_TRUE(msg.has_value());
  EXPECT_TRUE(msg->ok()) << (*msg).error().message;
}

}  // namespace
}  // namespace protoobf
