// Graph model and validation tests (paper §V-A consistency rules).
#include <gtest/gtest.h>

#include "graph/dot.hpp"
#include "graph/graph.hpp"
#include "graph/validate.hpp"

namespace protoobf {
namespace {

/// Small builder helpers keeping the tests readable.
NodeId add_terminal(Graph& g, const std::string& name, BoundaryKind b,
                    std::size_t size = 1) {
  Node n;
  n.name = name;
  n.type = NodeType::Terminal;
  n.boundary = b;
  n.fixed_size = size;
  if (b == BoundaryKind::Delimited) n.delimiter = to_bytes("|");
  return g.add_node(n);
}

NodeId add_composite(Graph& g, const std::string& name, NodeType t,
                     BoundaryKind b, std::vector<NodeId> children) {
  Node n;
  n.name = name;
  n.type = t;
  n.boundary = b;
  if (b == BoundaryKind::Delimited) n.delimiter = to_bytes("|");
  const NodeId id = g.add_node(n);
  for (NodeId child : children) {
    g.node(id).children.push_back(child);
    g.node(child).parent = id;
  }
  return id;
}

Graph tiny_graph() {
  Graph g("Tiny");
  const NodeId len = add_terminal(g, "len", BoundaryKind::Fixed, 2);
  Node payload;
  payload.name = "payload";
  payload.type = NodeType::Terminal;
  payload.boundary = BoundaryKind::Length;
  const NodeId pid = g.add_node(payload);
  g.node(pid).ref = len;
  const NodeId root =
      add_composite(g, "msg", NodeType::Sequence, BoundaryKind::End,
                    {len, pid});
  g.set_root(root);
  return g;
}

TEST(Graph, DfsOrderIsPreOrder) {
  Graph g = tiny_graph();
  const auto order = g.dfs_order();
  ASSERT_EQ(order.size(), 3u);
  EXPECT_EQ(g.node(order[0]).name, "msg");
  EXPECT_EQ(g.node(order[1]).name, "len");
  EXPECT_EQ(g.node(order[2]).name, "payload");
}

TEST(Graph, PathOfBuildsDottedNames) {
  Graph g = tiny_graph();
  EXPECT_EQ(g.path_of(g.find_by_name("payload").value()), "msg.payload");
}

TEST(Graph, FindByNameReportsAmbiguity) {
  Graph g = tiny_graph();
  add_terminal(g, "stray", BoundaryKind::Fixed);  // detached: not found
  EXPECT_FALSE(g.find_by_name("stray").has_value());
  EXPECT_TRUE(g.find_by_name("len").has_value());
}

TEST(Graph, ReplaceChildRewiresParents) {
  Graph g = tiny_graph();
  const NodeId root = g.root();
  const NodeId len = g.find_by_name("len").value();
  const NodeId extra = add_terminal(g, "extra", BoundaryKind::Fixed, 4);
  g.replace_child(root, len, extra);
  EXPECT_EQ(g.node(extra).parent, root);
  EXPECT_EQ(g.node(len).parent, kNoNode);
  EXPECT_EQ(g.child_index(root, extra), 0);
  EXPECT_EQ(g.child_index(root, len), -1);
}

TEST(Graph, ReferersOfFindsLengthRefs) {
  Graph g = tiny_graph();
  const NodeId len = g.find_by_name("len").value();
  const auto referers = g.referers_of(len);
  ASSERT_EQ(referers.size(), 1u);
  EXPECT_EQ(g.node(referers[0]).name, "payload");
  EXPECT_TRUE(g.is_length_target(len));
  EXPECT_FALSE(g.is_counter_target(len));
}

TEST(Graph, CloneIsDeepAndIdStable) {
  Graph g = tiny_graph();
  Graph copy = g.clone();
  copy.node(copy.find_by_name("len").value()).fixed_size = 9;
  EXPECT_EQ(g.node(g.find_by_name("len").value()).fixed_size, 2u);
}

TEST(Graph, DepthCountsLevels) {
  EXPECT_EQ(tiny_graph().depth(), 2u);
}

TEST(Condition, EvaluatesAllKinds) {
  Condition c;
  c.kind = Condition::Kind::Equals;
  c.values = {to_bytes("GET")};
  EXPECT_TRUE(c.evaluate(to_bytes("GET")));
  EXPECT_FALSE(c.evaluate(to_bytes("PUT")));

  c.kind = Condition::Kind::NotEquals;
  EXPECT_FALSE(c.evaluate(to_bytes("GET")));
  EXPECT_TRUE(c.evaluate(to_bytes("PUT")));

  c.kind = Condition::Kind::OneOf;
  c.values = {to_bytes("A"), to_bytes("B")};
  EXPECT_TRUE(c.evaluate(to_bytes("B")));
  EXPECT_FALSE(c.evaluate(to_bytes("C")));

  c.kind = Condition::Kind::NonZero;
  EXPECT_TRUE(c.evaluate(Bytes{0x00, 0x01}));
  EXPECT_FALSE(c.evaluate(Bytes{0x00, 0x00}));
  EXPECT_FALSE(c.evaluate(Bytes{}));

  c.kind = Condition::Kind::Always;
  EXPECT_TRUE(c.evaluate(Bytes{}));
}

// --- validation --------------------------------------------------------------

TEST(Validate, AcceptsTinyGraph) {
  EXPECT_TRUE(validate(tiny_graph()).ok());
}

TEST(Validate, RejectsMissingRoot) {
  Graph g("Empty");
  EXPECT_FALSE(validate(g).ok());
}

TEST(Validate, RejectsTerminalWithDelegatedBoundary) {
  Graph g("Bad");
  const NodeId t = add_terminal(g, "t", BoundaryKind::Delegated);
  g.set_root(add_composite(g, "m", NodeType::Sequence, BoundaryKind::End, {t}));
  EXPECT_FALSE(validate(g).ok());
}

TEST(Validate, RejectsTabularWithoutCounter) {
  Graph g("Bad");
  const NodeId e = add_terminal(g, "e", BoundaryKind::Fixed, 2);
  const NodeId tab =
      add_composite(g, "tab", NodeType::Tabular, BoundaryKind::End, {e});
  g.set_root(
      add_composite(g, "m", NodeType::Sequence, BoundaryKind::End, {tab}));
  EXPECT_FALSE(validate(g).ok());
}

TEST(Validate, RejectsFixedSizeZero) {
  Graph g("Bad");
  const NodeId t = add_terminal(g, "t", BoundaryKind::Fixed, 0);
  g.set_root(add_composite(g, "m", NodeType::Sequence, BoundaryKind::End, {t}));
  EXPECT_FALSE(validate(g).ok());
}

TEST(Validate, RejectsEmptyDelimiter) {
  Graph g("Bad");
  Node t;
  t.name = "t";
  t.type = NodeType::Terminal;
  t.boundary = BoundaryKind::Delimited;
  const NodeId tid = g.add_node(t);
  g.set_root(
      add_composite(g, "m", NodeType::Sequence, BoundaryKind::End, {tid}));
  EXPECT_FALSE(validate(g).ok());
}

TEST(Validate, RejectsReferenceAfterDependant) {
  Graph g("Bad");
  Node payload;
  payload.name = "payload";
  payload.type = NodeType::Terminal;
  payload.boundary = BoundaryKind::Length;
  const NodeId pid = g.add_node(payload);
  const NodeId len = add_terminal(g, "len", BoundaryKind::Fixed, 2);
  g.node(pid).ref = len;
  g.set_root(add_composite(g, "m", NodeType::Sequence, BoundaryKind::End,
                           {pid, len}));  // len AFTER payload
  const Status s = validate(g);
  ASSERT_FALSE(s.ok());
  EXPECT_NE(s.error().message.find("parse order"), std::string::npos);
}

TEST(Validate, RejectsReferenceIntoForeignOptional) {
  Graph g("Bad");
  const NodeId kind = add_terminal(g, "kind", BoundaryKind::Fixed, 1);
  const NodeId len = add_terminal(g, "len", BoundaryKind::Fixed, 2);
  Node opt;
  opt.name = "opt";
  opt.type = NodeType::Optional;
  opt.condition.kind = Condition::Kind::NonZero;
  const NodeId oid = g.add_node(opt);
  g.node(oid).condition.ref = kind;
  g.node(oid).children.push_back(len);
  g.node(len).parent = oid;
  Node payload;
  payload.name = "payload";
  payload.type = NodeType::Terminal;
  payload.boundary = BoundaryKind::Length;
  const NodeId pid = g.add_node(payload);
  g.node(pid).ref = len;  // references into the optional from outside
  g.set_root(add_composite(g, "m", NodeType::Sequence, BoundaryKind::End,
                           {kind, oid, pid}));
  const Status s = validate(g);
  ASSERT_FALSE(s.ok());
  EXPECT_NE(s.error().message.find("Optional"), std::string::npos);
}

TEST(Validate, RejectsReferenceIntoRepeatedElementFromOutside) {
  Graph g("Bad");
  const NodeId inner_len = add_terminal(g, "ilen", BoundaryKind::Fixed, 1);
  Node val;
  val.name = "val";
  val.type = NodeType::Terminal;
  val.boundary = BoundaryKind::Length;
  const NodeId vid = g.add_node(val);
  g.node(vid).ref = inner_len;
  const NodeId element = add_composite(g, "elem", NodeType::Sequence,
                                       BoundaryKind::Delegated,
                                       {inner_len, vid});
  const NodeId rep = add_composite(g, "rep", NodeType::Repetition,
                                   BoundaryKind::End, {element});
  // An outside node referencing the per-element length is ambiguous.
  Node outside;
  outside.name = "outside";
  outside.type = NodeType::Terminal;
  outside.boundary = BoundaryKind::Length;
  const NodeId oid = g.add_node(outside);
  g.node(oid).ref = inner_len;
  g.set_root(add_composite(g, "m", NodeType::Sequence, BoundaryKind::End,
                           {rep, oid}));
  const Status s = validate(g);
  ASSERT_FALSE(s.ok());
  EXPECT_NE(s.error().message.find("repeated element"), std::string::npos);
}

TEST(Validate, AcceptsTlvPattern) {
  // Per-element length references are the canonical TLV idiom.
  Graph g("Tlv");
  const NodeId ilen = add_terminal(g, "ilen", BoundaryKind::Fixed, 1);
  Node val;
  val.name = "val";
  val.type = NodeType::Terminal;
  val.boundary = BoundaryKind::Length;
  const NodeId vid = g.add_node(val);
  g.node(vid).ref = ilen;
  const NodeId element = add_composite(
      g, "elem", NodeType::Sequence, BoundaryKind::Delegated, {ilen, vid});
  const NodeId rep = add_composite(g, "rep", NodeType::Repetition,
                                   BoundaryKind::End, {element});
  g.set_root(
      add_composite(g, "m", NodeType::Sequence, BoundaryKind::End, {rep}));
  EXPECT_TRUE(validate(g).ok()) << validate(g).error().message;
}

TEST(Dot, RendersPaperNotation) {
  const Graph g = tiny_graph();
  const std::string dot = to_dot(g);
  EXPECT_NE(dot.find("digraph"), std::string::npos);
  EXPECT_NE(dot.find("Te F(2)"), std::string::npos);   // Fixed terminal
  EXPECT_NE(dot.find("L(len)"), std::string::npos);    // Length boundary
  EXPECT_NE(dot.find("style=dashed"), std::string::npos);  // ref arrow
  const std::string outline = to_outline(g);
  EXPECT_NE(outline.find("msg [S E]"), std::string::npos);
}

}  // namespace
}  // namespace protoobf
