// Memory discipline under sustained hostile input (ISSUE 6 satellite).
//
// An adversary who cannot crash the parser can still try to grow it: feed
// garbage forever and hope error paths leak nodes, pin slabs, or balloon
// reassembly buffers. These tests flood the parse and streaming layers
// with inputs that overwhelmingly fail, and assert the memory envelope:
//
//   * the InstPool high-water mark (slabs) is set by the deepest single
//     parse, not by the number of failed inputs — flat across the flood;
//   * no parse error path leaks a checked-out node (live returns to 0);
//   * StreamReader::resync() recovery returns the reassembly buffer to
//     its drained state, flood after flood;
//   * SessionArena::shrink() afterwards releases everything — retained
//     buffer capacity and idle pool slabs both return to zero, the
//     go-idle baseline.
#include <gtest/gtest.h>

#include <memory>

#include "core/protoobf.hpp"
#include "fuzz/mutator.hpp"
#include "fuzz_support.hpp"
#include "session/session.hpp"
#include "stream/channel.hpp"
#include "util/rng.hpp"

namespace protoobf {
namespace {

std::shared_ptr<const ObfuscatedProtocol> compile_netdemo() {
  auto graph = Framework::load_spec(fuzztest::kNetDemoSpec);
  EXPECT_TRUE(graph.ok());
  ObfuscationConfig cfg;
  cfg.seed = 90125;
  cfg.per_node = 2;
  auto protocol = Framework::generate(*graph, cfg);
  EXPECT_TRUE(protocol.ok()) << protocol.error().message;
  return std::make_shared<const ObfuscatedProtocol>(std::move(*protocol));
}

/// Hostile input mix: pure random garbage plus valid frames with their
/// front bytes mangled (fails deep inside the parse, where partially
/// built trees must be rolled back into the pool).
Bytes hostile_input(const fuzz::SeedFrame& base, Rng& rng) {
  if (rng.chance(0.5)) {
    Bytes garbage(1 + rng.below(96));
    rng.fill(garbage, garbage.size());
    return garbage;
  }
  Bytes mangled = base.wire;
  const std::size_t flips = 1 + rng.below(4);
  for (std::size_t i = 0; i < flips; ++i) {
    mangled[rng.below(mangled.size())] ^=
        static_cast<Byte>(rng.between(1, 255));
  }
  return mangled;
}

TEST(HostileMemory, PoolHighWaterStaysFlatAcrossAMalformedFlood) {
  const std::uint64_t seed = fuzztest::fuzz_seed(0x4057);
  SCOPED_TRACE(fuzztest::seed_note(seed));
  auto protocol = compile_netdemo();
  auto mutator = fuzz::WireMutator::create(*protocol, seed);
  ASSERT_TRUE(mutator.ok());

  SessionArena arena;
  Rng rng(seed);
  std::uint64_t malformed = 0;

  // Warmup: a handful of parses (valid and hostile) establish the
  // high-water mark the flood must then hold.
  for (int i = 0; i < 32; ++i) {
    const Bytes input = i % 4 == 0 ? mutator->seeds().front().wire
                                   : hostile_input(mutator->seeds().front(),
                                                   rng);
    auto tree = protocol->parse(input, &arena.scratch(), &arena.scopes(),
                                &arena.nodes(), &arena.derive());
    (void)tree;
  }
  const std::size_t high_water = arena.nodes().stats().slabs;
  ASSERT_GT(high_water, 0u);
  ASSERT_EQ(arena.nodes().stats().live, 0u);

  constexpr std::uint64_t kFlood = 5000;
  for (std::uint64_t i = 0; i < kFlood; ++i) {
    const Bytes input = hostile_input(
        mutator->seeds()[i % mutator->seeds().size()], rng);
    {
      // A mangled frame occasionally still parses (the flip landed in
      // payload data); its tree must drop back to the pool before the
      // leak check below.
      auto tree = protocol->parse(input, &arena.scratch(), &arena.scopes(),
                                  &arena.nodes(), &arena.derive());
      if (!tree.ok() && tree.error().kind == ErrorKind::Malformed) {
        ++malformed;
      }
    }
    ASSERT_EQ(arena.nodes().stats().live, 0u)
        << "error path leaked nodes at flood input " << i << "\n"
        << fuzztest::seed_note(seed);
  }
  EXPECT_GT(malformed, kFlood / 2)
      << "the flood is not actually hostile enough to test error paths";
  EXPECT_EQ(arena.nodes().stats().slabs, high_water)
      << "pool capacity tracked the input count instead of parse depth";

  // Go-idle: shrink releases every retained byte and every idle slab.
  arena.shrink();
  EXPECT_EQ(arena.retained(), 0u);
  EXPECT_EQ(arena.nodes().stats().slabs, 0u);
  EXPECT_EQ(arena.nodes().stats().live, 0u);
}

TEST(HostileMemory, ResyncReturnsReaderAndArenaToBaseline) {
  const std::uint64_t seed = fuzztest::fuzz_seed(0x4058);
  SCOPED_TRACE(fuzztest::seed_note(seed));
  auto protocol = compile_netdemo();
  auto mutator = fuzz::WireMutator::create(*protocol, seed);
  ASSERT_TRUE(mutator.ok());

  Session session(protocol);
  // A small frame cap makes hostile length prefixes fail fast instead of
  // stalling the stream waiting for gigabytes that never come.
  LengthPrefixFramer::Config framer_cfg;
  framer_cfg.max_frame_size = 4096;
  LengthPrefixFramer framer(framer_cfg);
  Channel channel(session, framer);

  Rng rng(seed ^ 0x9e37);
  constexpr int kRounds = 400;
  int failures = 0;
  for (int round = 0; round < kRounds; ++round) {
    // Garbage burst: random bytes in random chunks. Most bursts forge a
    // hostile length prefix and fail framing; resync() must recover.
    Bytes burst(1 + rng.below(64));
    rng.fill(burst, burst.size());
    std::size_t fed = 0;
    while (fed < burst.size()) {
      const std::size_t step = std::min<std::size_t>(
          burst.size() - fed, static_cast<std::size_t>(rng.between(1, 11)));
      channel.on_bytes(BytesView(burst).subspan(fed, step));
      fed += step;
      while (channel.receive().has_value()) {
      }
    }
    if (channel.failed()) {
      ++failures;
      channel.resync();
    }

    // Every few rounds, prove the stream is alive again: a valid frame
    // must round-trip through the same channel. (Leftover garbage ahead
    // of it may first surface as more failures — resync through those.)
    if (round % 16 == 15) {
      Message msg(protocol->original());
      ASSERT_TRUE(msg.set("tag", to_bytes("OK")).ok());
      ASSERT_TRUE(msg.set("body", rng.bytes(4)).ok());
      auto framed = channel.send(msg.root(), static_cast<std::uint64_t>(round));
      ASSERT_TRUE(framed.ok());
      const Bytes wire(framed->begin(), framed->end());
      channel.on_bytes(wire);
      bool delivered = false;
      for (int guard = 0; guard < 4096 && !delivered; ++guard) {
        while (auto m = channel.receive()) {
          if (m->ok()) delivered = true;
        }
        if (delivered) break;
        if (channel.failed()) {
          ++failures;
          channel.resync();
          continue;
        }
        break;  // reader waits for more bytes: frame swallowed by garbage
      }
      if (!delivered) {
        // The valid frame landed inside a half-believed garbage frame;
        // flush the stream state and confirm recovery on a clean reader.
        channel.reader().reset();
        channel.on_bytes(wire);
        while (auto m = channel.receive()) {
          if (m->ok()) delivered = true;
        }
      }
      ASSERT_TRUE(delivered)
          << "channel never recovered at round " << round << "\n"
          << fuzztest::seed_note(seed);
    }

    // The recovery baseline: nothing parsed, so no live nodes; the
    // reassembly buffer holds at most the bytes of this burst plus one
    // unfinished frame header — never the flood's cumulative size.
    ASSERT_EQ(session.arena().nodes().stats().live, 0u);
    ASSERT_LE(channel.reader().reassembly_size(), 8u * 1024u)
        << "reassembly grew with the flood at round " << round;
  }
  EXPECT_GT(failures, 0) << "the garbage never tripped framing — the "
                            "hostile path was not exercised";

  // Idle shrink: the reader drops reassembly capacity, the arena drops
  // buffers and slabs. Baseline means zero retained everywhere.
  channel.reader().reset();
  session.arena().shrink();
  EXPECT_EQ(session.arena().retained(), 0u);
  EXPECT_EQ(session.arena().nodes().stats().slabs, 0u);
}

}  // namespace
}  // namespace protoobf
