// Two-peer interoperability: the deployment model of paper §IV — "These
// source codes must be integrated within all the applications that
// communicate, so that they use the same obfuscations."
//
// Two independently constructed ObfuscatedProtocol instances (a client and
// a server binary built from the same specification and configuration)
// must interoperate wire-compatibly, while instances from different
// configurations must not.
#include <gtest/gtest.h>

#include "protocols/http.hpp"
#include "protocols/modbus.hpp"

namespace protoobf {
namespace {

TEST(Interop, IndependentInstancesWithSameConfigInteroperate) {
  // "Client" and "server" each run Framework::generate themselves, as two
  // separately compiled applications would.
  auto client_graph = Framework::load_spec(modbus::request_spec()).value();
  auto server_graph = Framework::load_spec(modbus::request_spec()).value();

  ObfuscationConfig cfg;
  cfg.per_node = 2;
  cfg.seed = 0xc0ffee;
  auto client = Framework::generate(client_graph, cfg).value();
  auto server = Framework::generate(server_graph, cfg).value();

  Rng rng(42);
  for (int i = 0; i < 25; ++i) {
    Message request = modbus::random_request(client_graph, rng);
    auto wire = client.serialize(request.root(), 1000u + i);
    ASSERT_TRUE(wire.ok()) << wire.error().message;

    auto received = server.parse(*wire);
    ASSERT_TRUE(received.ok()) << received.error().message;

    InstPtr canonical = ast::clone(request.root());
    ASSERT_TRUE(client.canonicalize(*canonical).ok());
    EXPECT_TRUE(ast::equal(*canonical, **received));
  }
}

TEST(Interop, JournalsAreIdenticalAcrossInstances) {
  auto g = Framework::load_spec(http::request_spec()).value();
  ObfuscationConfig cfg;
  cfg.per_node = 3;
  cfg.seed = 99;
  auto a = Framework::generate(g, cfg).value();
  auto b = Framework::generate(g, cfg).value();
  ASSERT_EQ(a.journal().size(), b.journal().size());
  for (std::size_t i = 0; i < a.journal().size(); ++i) {
    EXPECT_EQ(a.journal()[i].kind, b.journal()[i].kind);
    EXPECT_EQ(a.journal()[i].target, b.journal()[i].target);
    EXPECT_EQ(a.journal()[i].key, b.journal()[i].key);
    EXPECT_EQ(a.journal()[i].split_point, b.journal()[i].split_point);
    EXPECT_EQ(a.journal()[i].pad_index, b.journal()[i].pad_index);
  }
}

TEST(Interop, DifferentConfigurationsDoNotInteroperate) {
  auto g = Framework::load_spec(modbus::request_spec()).value();
  ObfuscationConfig cfg_a;
  cfg_a.per_node = 2;
  cfg_a.seed = 1;
  ObfuscationConfig cfg_b = cfg_a;
  cfg_b.seed = 2;
  auto peer_a = Framework::generate(g, cfg_a).value();
  auto peer_b = Framework::generate(g, cfg_b).value();

  Rng rng(7);
  int decoded_correctly = 0;
  for (int i = 0; i < 20; ++i) {
    Message request = modbus::random_request(g, rng);
    auto wire = peer_a.serialize(request.root(), i);
    ASSERT_TRUE(wire.ok());
    auto received = peer_b.parse(*wire);
    if (!received.ok()) continue;
    InstPtr canonical = ast::clone(request.root());
    ASSERT_TRUE(peer_a.canonicalize(*canonical).ok());
    if (ast::equal(*canonical, **received)) ++decoded_correctly;
  }
  EXPECT_EQ(decoded_correctly, 0);
}

TEST(Interop, WireImageIsDeterministicForMessageSeed) {
  // Reproducibility contract: (protocol config, message, msg_seed) fully
  // determines the wire bytes — needed for record/replay debugging.
  auto g = Framework::load_spec(modbus::request_spec()).value();
  ObfuscationConfig cfg;
  cfg.per_node = 2;
  cfg.seed = 5;
  auto p1 = Framework::generate(g, cfg).value();
  auto p2 = Framework::generate(g, cfg).value();
  Message msg = modbus::make_read_holding(g, 1, 2, 3, 4);
  const auto w1 = p1.serialize(msg.root(), 77);
  const auto w2 = p2.serialize(msg.root(), 77);
  ASSERT_TRUE(w1.ok());
  ASSERT_TRUE(w2.ok());
  EXPECT_EQ(to_hex(*w1), to_hex(*w2));
}

}  // namespace
}  // namespace protoobf
