// Message accessor facade tests — the stable interface of paper §VI.
#include <gtest/gtest.h>

#include "core/protoobf.hpp"

namespace protoobf {
namespace {

Graph demo_graph() {
  auto g = Framework::load_spec(R"(
protocol Demo
m: seq end {
  kind: terminal fixed(1)
  count: terminal delimited(";") ascii
  opt: optional (kind == 0x01) {
    nested: seq {
      inner: terminal fixed(2)
    }
  }
  items: repeat end { item: seq { x: terminal fixed(1) y: terminal fixed(1) } }
}
)");
  EXPECT_TRUE(g.ok()) << g.error().message;
  return std::move(g.value());
}

TEST(Message, SetGetRoundTrip) {
  const Graph g = demo_graph();
  Message msg(g);
  ASSERT_TRUE(msg.set("kind", Bytes{3}).ok());
  EXPECT_EQ(msg.get("kind").value(), Bytes{3});
  EXPECT_EQ(msg.get_text("kind").value(), std::string(1, '\x03'));
}

TEST(Message, SetUintUsesEncoding) {
  const Graph g = demo_graph();
  Message msg(g);
  ASSERT_TRUE(msg.set_uint("kind", 200).ok());
  EXPECT_EQ(msg.get("kind").value(), Bytes{200});
  ASSERT_TRUE(msg.set_uint("count", 42).ok());
  EXPECT_EQ(msg.get_text("count").value(), "42");  // ASCII field
  EXPECT_EQ(msg.get_uint("count").value(), 42u);
}

TEST(Message, SettingInsideOptionalMaterializesIt) {
  const Graph g = demo_graph();
  Message msg(g);
  ASSERT_TRUE(msg.set("inner", Bytes{1, 2}).ok());
  const Inst* opt = ast::find_path(g, msg.root(), "m.opt");
  ASSERT_NE(opt, nullptr);
  EXPECT_TRUE(opt->present);
  EXPECT_EQ(msg.get("m.opt.nested.inner").value(), (Bytes{1, 2}));
}

TEST(Message, SetPresentTogglesOptional) {
  const Graph g = demo_graph();
  Message msg(g);
  ASSERT_TRUE(msg.set_present("opt", true).ok());
  EXPECT_TRUE(ast::find_path(g, msg.root(), "m.opt")->present);
  ASSERT_TRUE(msg.set_present("opt", false).ok());
  const Inst* opt = ast::find_path(g, msg.root(), "m.opt");
  EXPECT_FALSE(opt->present);
  EXPECT_TRUE(opt->children.empty());
  EXPECT_FALSE(msg.set_present("kind", true).ok());  // not an optional
}

TEST(Message, AppendGrowsRepetition) {
  const Graph g = demo_graph();
  Message msg(g);
  EXPECT_EQ(msg.append("items").value(), 0u);
  EXPECT_EQ(msg.append("items").value(), 1u);
  ASSERT_TRUE(msg.set("items[1].item.x", Bytes{5}).ok());
  EXPECT_EQ(msg.get("items[1].item.x").value(), Bytes{5});
  EXPECT_FALSE(msg.append("kind").ok());  // not repeated
}

TEST(Message, IndexedPathOutOfRangeFails) {
  const Graph g = demo_graph();
  Message msg(g);
  msg.append("items");
  EXPECT_FALSE(msg.set("items[3].item.x", Bytes{1}).ok());
}

TEST(Message, UnknownPathFails) {
  const Graph g = demo_graph();
  Message msg(g);
  EXPECT_FALSE(msg.set("nosuch", Bytes{1}).ok());
  EXPECT_FALSE(msg.get("nosuch").ok());
}

TEST(Message, SetOnCompositeFails) {
  const Graph g = demo_graph();
  Message msg(g);
  EXPECT_FALSE(msg.set("items", Bytes{1}).ok());
}

TEST(Message, InterfaceIsStableAcrossObfuscations) {
  // The exact same application code works for any transformation choice —
  // the central interface requirement of §VI.
  const Graph g = demo_graph();
  Bytes reference;
  for (std::uint64_t seed : {1u, 2u, 3u, 4u}) {
    for (int per_node : {0, 1, 2, 3}) {
      ObfuscationConfig cfg;
      cfg.seed = seed;
      cfg.per_node = per_node;
      auto protocol = Framework::generate(g, cfg);
      ASSERT_TRUE(protocol.ok());

      // -- identical application code, regardless of cfg ------------------
      Message msg(g);
      msg.set_uint("kind", 1);
      msg.set_uint("count", 7);
      msg.set("inner", Bytes{0xde, 0xad});
      msg.append("items");
      msg.set("items[0].item.x", Bytes{1});
      msg.set("items[0].item.y", Bytes{2});
      // --------------------------------------------------------------------

      auto wire = protocol->serialize(msg.root(), 99);
      ASSERT_TRUE(wire.ok()) << wire.error().message;
      auto back = protocol->parse(*wire);
      ASSERT_TRUE(back.ok()) << back.error().message;
      EXPECT_EQ(ast::find_path(g, **back, "m.opt.nested.inner")->value,
                (Bytes{0xde, 0xad}));
      if (per_node == 0) {
        reference = *wire;
      } else {
        EXPECT_NE(*wire, reference);  // obfuscated image differs
      }
    }
  }
}

}  // namespace
}  // namespace protoobf
