// Native backend tests (ISSUE 7 tentpole).
//
// The compiled generated unit must be *indistinguishable* from the
// interpreter at the byte level:
//   * serialize: identical wire bytes for every (message, msg_seed) —
//     including the per-message randomness (split halves, pad bytes) and
//     the holder-fixpoint reruns, which consume their own seeded streams;
//   * parse / parse_prefix: identical verdict, consumed count, error
//     taxonomy (Truncated vs Malformed, need hints) and logical tree, on
//     valid wires and on mutated hostile ones.
//
// Plus the operational half: the cache serves repeat keys without
// recompiling, coalesces concurrent misses, reuses on-disk units across
// cache instances, detects corrupted artifacts instead of dlopen'ing them
// blind, and background-attaches to a serving protocol.
//
// Every test skips (with the probe's reason) when the toolchain cannot
// produce loadable units in this build mode — e.g. ASan with static
// libasan, where dlopen of a sanitized .so fails by design.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/protoobf.hpp"
#include "fuzz/random_message.hpp"
#include "fuzz_support.hpp"
#include "native/cache.hpp"
#include "runtime/parse.hpp"
#include "session/protocol_cache.hpp"
#include "util/rng.hpp"

namespace protoobf {
namespace {

namespace fs = std::filesystem;
using native::NativeCache;
using native::NativeCompiler;
using native::NativeProtocol;

#define SKIP_WITHOUT_TOOLCHAIN()                                       \
  if (!NativeCompiler::toolchain_available()) {                        \
    GTEST_SKIP() << "native toolchain unavailable in this build mode: " \
                 << NativeCompiler::toolchain_status();                \
  }

/// A scratch cache dir per test suite run, so cache hit/corruption tests
/// are not confused by artifacts from earlier runs or other tests.
std::string fresh_cache_dir(const std::string& tag) {
  const std::string dir = ::testing::TempDir() + "protoobf-native-" + tag;
  std::error_code ec;
  fs::remove_all(dir, ec);
  return dir;
}

NativeCompiler::Options options_in(const std::string& dir) {
  NativeCompiler::Options options;
  options.cache_dir = dir;
  return options;
}

ObfuscatedProtocol compile_spec(std::string_view spec, int per_node,
                                std::uint64_t seed = 90125) {
  auto g = Framework::load_spec(spec);
  EXPECT_TRUE(g.ok()) << g.error().message;
  ObfuscationConfig cfg;
  cfg.per_node = per_node;
  cfg.seed = seed;
  auto protocol = Framework::generate(*g, cfg);
  EXPECT_TRUE(protocol.ok()) << protocol.error().message;
  return std::move(*protocol);
}

// --- byte identity ----------------------------------------------------------

/// The property: across every registry spec at several obfuscation depths,
/// random messages serialize to identical bytes, and the wires (valid and
/// bit-flipped) parse to identical outcomes through both implementations.
TEST(NativeIdentity, SerializeAndParseMatchInterpreterAcrossRegistry) {
  SKIP_WITHOUT_TOOLCHAIN();
  const std::uint64_t seed = fuzztest::fuzz_seed(0x7A714E);
  SCOPED_TRACE(fuzztest::seed_note(seed));

  NativeCache cache(16, options_in(fresh_cache_dir("identity")));
  for (const fuzztest::SpecEntry& entry : fuzztest::spec_registry()) {
    for (const int per_node : {0, 2}) {
      auto protocol = compile_spec(entry.spec, per_node);
      ObfuscationConfig cfg;
      cfg.per_node = per_node;
      cfg.seed = 90125;
      auto backend = cache.get_or_compile(
          protocol, ProtocolCache::hash_spec(entry.spec), cfg);
      ASSERT_TRUE(backend.ok())
          << entry.name << ": " << backend.error().message;
      const NativeProtocol* native = backend->get();
      const bool stream = stream_safe(protocol.wire_graph()).ok();

      Rng rng(seed ^ (per_node * 7919) ^
              std::hash<std::string_view>{}(entry.name));
      int round_trips = 0;
      for (int i = 0; i < 60; ++i) {
        InstPtr msg = fuzz::random_message(protocol.original(), rng);
        if (msg == nullptr) continue;
        const std::uint64_t msg_seed = rng.next_u64();
        Bytes interp, nat;
        Status si = protocol.serialize_with(nullptr, *msg, msg_seed, interp);
        Status sn = protocol.serialize_with(native, *msg, msg_seed, nat);
        ASSERT_EQ(si.ok(), sn.ok())
            << entry.name << "/" << per_node << " msg " << i
            << ": serialize outcome diverged: "
            << (si.ok() ? "ok" : si.error().message) << " vs "
            << (sn.ok() ? "ok" : sn.error().message);
        if (!si.ok()) continue;
        ASSERT_EQ(to_hex(interp), to_hex(nat))
            << entry.name << "/" << per_node << " msg " << i
            << ": native wire differs";
        ++round_trips;

        // The valid wire and a bit-flipped mutant, through whole-message
        // and (when stream-safe) prefix parses.
        for (const bool mutate : {false, true}) {
          Bytes wire = interp;
          if (mutate && !wire.empty()) {
            wire[rng.below(wire.size())] ^=
                static_cast<Byte>(1 + rng.below(255));
          }
          auto ti = protocol.parse_with(nullptr, wire);
          auto tn = protocol.parse_with(native, wire);
          ASSERT_EQ(ti.ok(), tn.ok())
              << entry.name << "/" << per_node << " msg " << i
              << ": parse outcome diverged on "
              << (mutate ? "mutated" : "valid") << " wire\n" << hexdump(wire);
          if (ti.ok()) {
            EXPECT_TRUE(ast::equal(**ti, **tn))
                << entry.name << "/" << per_node << ": tree mismatch";
          } else {
            EXPECT_EQ(ti.error().kind, tn.error().kind) << entry.name;
          }
          if (!stream) continue;
          std::size_t ci = 0, cn = 0;
          auto pi = protocol.parse_prefix_with(nullptr, wire, &ci);
          auto pn = protocol.parse_prefix_with(native, wire, &cn);
          ASSERT_EQ(pi.ok(), pn.ok())
              << entry.name << "/" << per_node
              << ": prefix outcome diverged\n" << hexdump(wire);
          if (pi.ok()) {
            EXPECT_EQ(ci, cn) << entry.name << ": consumed mismatch";
            EXPECT_TRUE(ast::equal(**pi, **pn)) << entry.name;
          } else {
            EXPECT_EQ(pi.error().kind, pn.error().kind) << entry.name;
            EXPECT_EQ(pi.error().need, pn.error().need)
                << entry.name << ": truncation need hint diverged";
          }
        }
      }
      EXPECT_GT(round_trips, 0) << entry.name << "/" << per_node;
    }
  }
}

/// Truncation sweep: every prefix of a valid wire gets the same taxonomy
/// and need hint from both implementations (the framer depends on both).
TEST(NativeIdentity, TruncationSweepAgreesByteForByte) {
  SKIP_WITHOUT_TOOLCHAIN();
  auto protocol = compile_spec(fuzztest::kDelimSpec, 2);
  NativeCache cache(4, options_in(fresh_cache_dir("sweep")));
  ObfuscationConfig cfg;
  cfg.per_node = 2;
  cfg.seed = 90125;
  auto backend = cache.get_or_compile(
      protocol, ProtocolCache::hash_spec(fuzztest::kDelimSpec), cfg);
  ASSERT_TRUE(backend.ok()) << backend.error().message;

  Rng rng(0x5EEDF00D);
  InstPtr msg;
  while (msg == nullptr) msg = fuzz::random_message(protocol.original(), rng);
  Bytes wire;
  ASSERT_TRUE(protocol.serialize_with(nullptr, *msg, 7, wire).ok());
  for (std::size_t cut = 0; cut <= wire.size(); ++cut) {
    const BytesView prefix = BytesView(wire).first(cut);
    std::size_t ci = 0, cn = 0;
    auto pi = protocol.parse_prefix_with(nullptr, prefix, &ci);
    auto pn = protocol.parse_prefix_with(backend->get(), prefix, &cn);
    ASSERT_EQ(pi.ok(), pn.ok()) << "cut " << cut;
    if (pi.ok()) {
      EXPECT_EQ(ci, cn) << "cut " << cut;
    } else {
      EXPECT_EQ(pi.error().kind, pn.error().kind) << "cut " << cut;
      EXPECT_EQ(pi.error().need, pn.error().need) << "cut " << cut;
    }
  }
}

// --- attachment and routing -------------------------------------------------

TEST(NativeAttach, AttachedBackendServesDefaultEntryPoints) {
  SKIP_WITHOUT_TOOLCHAIN();
  auto protocol = compile_spec(fuzztest::kNetDemoSpec, 2);
  NativeCache cache(4, options_in(fresh_cache_dir("attach")));
  ObfuscationConfig cfg;
  cfg.per_node = 2;
  cfg.seed = 90125;
  auto backend = cache.get_or_compile(
      protocol, ProtocolCache::hash_spec(fuzztest::kNetDemoSpec), cfg);
  ASSERT_TRUE(backend.ok()) << backend.error().message;

  Rng rng(11);
  InstPtr msg;
  while (msg == nullptr) msg = fuzz::random_message(protocol.original(), rng);
  Bytes interpreted;
  ASSERT_TRUE(protocol.serialize_into(*msg, 3, interpreted).ok());

  ASSERT_EQ(protocol.wire_backend(), nullptr);
  protocol.attach_wire_backend(*backend);
  ASSERT_NE(protocol.wire_backend(), nullptr);

  // Same bytes through the plain entry points, now served natively.
  Bytes attached;
  ASSERT_TRUE(protocol.serialize_into(*msg, 3, attached).ok());
  EXPECT_EQ(to_hex(attached), to_hex(interpreted));
  auto parsed = protocol.parse(attached);
  ASSERT_TRUE(parsed.ok()) << parsed.error().message;
  // The obfuscated wire graph need not be stream-safe; what matters is that
  // the routed prefix path agrees with the interpreter's.
  std::size_t consumed = 0, iconsumed = 0;
  auto prefixed = protocol.parse_prefix(attached, &consumed);
  auto iprefixed =
      protocol.parse_prefix_with(nullptr, attached, &iconsumed);
  ASSERT_EQ(prefixed.ok(), iprefixed.ok());
  if (prefixed.ok()) {
    EXPECT_EQ(consumed, iconsumed);
  }

  // Copies share the attachment (one serving protocol, many holders).
  ObfuscatedProtocol copy = protocol;
  EXPECT_NE(copy.wire_backend(), nullptr);

  protocol.attach_wire_backend(nullptr);
  EXPECT_EQ(protocol.wire_backend(), nullptr);
}

TEST(NativeAttach, BackgroundCompileSwapsInWhileServing) {
  SKIP_WITHOUT_TOOLCHAIN();
  auto owned = std::make_shared<const ObfuscatedProtocol>(
      compile_spec(fuzztest::kNetDemoSpec, 1));
  NativeCache cache(4, options_in(fresh_cache_dir("background")));
  ObfuscationConfig cfg;
  cfg.per_node = 1;
  cfg.seed = 90125;

  // Cold key: serving starts interpreted immediately...
  Rng rng(21);
  InstPtr msg;
  while (msg == nullptr) msg = fuzz::random_message(owned->original(), rng);
  Bytes cold;
  ASSERT_TRUE(owned->serialize_into(*msg, 5, cold).ok());

  cache.compile_and_attach(owned, ProtocolCache::hash_spec(fuzztest::kNetDemoSpec),
                           cfg);
  cache.wait_idle();

  // ...and the unit swapped in mid-flight without changing the bytes.
  ASSERT_NE(owned->wire_backend(), nullptr);
  Bytes hot;
  ASSERT_TRUE(owned->serialize_into(*msg, 5, hot).ok());
  EXPECT_EQ(to_hex(hot), to_hex(cold));
  EXPECT_EQ(cache.stats().background, 1u);
  EXPECT_EQ(cache.stats().errors, 0u);
}

TEST(NativeAttach, FailedBackgroundCompilePoisonsTheKey) {
  auto owned = std::make_shared<const ObfuscatedProtocol>(
      compile_spec(fuzztest::kNetDemoSpec, 1));
  // A compiler driver that cannot exist makes every build fail the same
  // deterministic way — the shape of a broken toolchain in production.
  NativeCompiler::Options options = options_in(fresh_cache_dir("poison"));
  options.compiler = "/nonexistent/protoobf-cc";
  NativeCache cache(4, options, /*poison_ttl=*/std::chrono::milliseconds(200));
  ObfuscationConfig cfg;
  cfg.per_node = 1;
  cfg.seed = 90125;
  const std::uint64_t spec_hash =
      ProtocolCache::hash_spec(fuzztest::kNetDemoSpec);

  // First attempt: the build runs, fails, is counted once — and serving
  // stays interpreted (the protocol is untouched).
  cache.compile_and_attach(owned, spec_hash, cfg);
  cache.wait_idle();
  EXPECT_EQ(cache.stats().background, 1u);
  EXPECT_EQ(cache.stats().errors, 1u);
  EXPECT_EQ(owned->wire_backend(), nullptr);

  // Inside the TTL nothing retries the doomed compile: a background
  // request doesn't even spawn a worker, and a blocking request fails
  // fast, replaying the original error.
  cache.compile_and_attach(owned, spec_hash, cfg);
  cache.wait_idle();
  EXPECT_EQ(cache.stats().background, 1u) << "poisoned key spawned a worker";
  auto blocked = cache.get_or_compile(*owned, spec_hash, cfg);
  EXPECT_FALSE(blocked.ok());
  EXPECT_EQ(cache.stats().errors, 1u) << "the error must be surfaced once";
  EXPECT_GE(cache.stats().poisoned, 2u);

  // After the TTL the key is retried (the failure may have been
  // transient); with the same broken driver it just fails — and poisons —
  // again.
  std::this_thread::sleep_for(std::chrono::milliseconds(250));
  auto retried = cache.get_or_compile(*owned, spec_hash, cfg);
  EXPECT_FALSE(retried.ok());
  EXPECT_EQ(cache.stats().errors, 2u) << "TTL expiry must re-run the build";
}

// --- cache behaviour --------------------------------------------------------

TEST(NativeCacheTest, RepeatKeyHitsWithoutRecompiling) {
  SKIP_WITHOUT_TOOLCHAIN();
  auto protocol = compile_spec(fuzztest::kNetDemoSpec, 2);
  NativeCache cache(4, options_in(fresh_cache_dir("hits")));
  ObfuscationConfig cfg;
  cfg.per_node = 2;
  cfg.seed = 90125;
  const std::uint64_t spec_hash =
      ProtocolCache::hash_spec(fuzztest::kNetDemoSpec);

  auto first = cache.get_or_compile(protocol, spec_hash, cfg);
  ASSERT_TRUE(first.ok()) << first.error().message;
  auto second = cache.get_or_compile(protocol, spec_hash, cfg);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(first->get(), second->get()) << "hit must return the same unit";
  EXPECT_EQ(cache.stats().misses, 1u);
  EXPECT_EQ(cache.stats().hits, 1u);

  // A different (seed) key is its own compile...
  auto other_protocol = compile_spec(fuzztest::kNetDemoSpec, 2, 777);
  ObfuscationConfig other_cfg = cfg;
  other_cfg.seed = 777;
  auto third = cache.get_or_compile(other_protocol, spec_hash, other_cfg);
  ASSERT_TRUE(third.ok());
  EXPECT_EQ(cache.stats().misses, 2u);

  // ...and a fresh cache over the same directory reuses the disk artifact
  // (cross-process reuse) instead of running the compiler again.
  NativeCache second_cache(4, options_in(cache.compiler().options().cache_dir));
  auto reloaded = second_cache.get_or_compile(protocol, spec_hash, cfg);
  ASSERT_TRUE(reloaded.ok());
  EXPECT_EQ(second_cache.stats().disk_hits, 1u);
}

TEST(NativeCacheTest, ConcurrentMissesCoalesceToOneCompile) {
  SKIP_WITHOUT_TOOLCHAIN();
  auto protocol = compile_spec(fuzztest::kDelimSpec, 2);
  NativeCache cache(4, options_in(fresh_cache_dir("coalesce")));
  ObfuscationConfig cfg;
  cfg.per_node = 2;
  cfg.seed = 90125;
  const std::uint64_t spec_hash = ProtocolCache::hash_spec(fuzztest::kDelimSpec);

  constexpr int kThreads = 6;
  std::vector<std::thread> threads;
  std::vector<bool> ok(kThreads, false);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      auto backend = cache.get_or_compile(protocol, spec_hash, cfg);
      ok[t] = backend.ok();
    });
  }
  for (std::thread& thread : threads) thread.join();
  for (int t = 0; t < kThreads; ++t) EXPECT_TRUE(ok[t]) << "thread " << t;
  const NativeCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.misses, 1u) << "exactly one leader compiles";
  EXPECT_EQ(stats.hits + stats.coalesced, static_cast<std::size_t>(kThreads) - 1);
}

TEST(NativeCacheTest, CorruptedDiskUnitIsRecompiledNeverServed) {
  SKIP_WITHOUT_TOOLCHAIN();
  auto protocol = compile_spec(fuzztest::kNetDemoSpec, 1);
  const std::string dir = fresh_cache_dir("corrupt");
  ObfuscationConfig cfg;
  cfg.per_node = 1;
  cfg.seed = 90125;
  const std::uint64_t spec_hash =
      ProtocolCache::hash_spec(fuzztest::kNetDemoSpec);

  {
    NativeCache cache(4, options_in(dir));
    ASSERT_TRUE(cache.get_or_compile(protocol, spec_hash, cfg).ok());
  }
  // Truncate and scribble over every cached .so in the directory.
  int corrupted = 0;
  for (const auto& it : fs::directory_iterator(dir)) {
    if (it.path().extension() != ".so") continue;
    std::ofstream out(it.path(), std::ios::binary | std::ios::trunc);
    out << "this is not a shared object";
    ++corrupted;
  }
  ASSERT_GT(corrupted, 0);

  NativeCache cache(4, options_in(dir));
  auto backend = cache.get_or_compile(protocol, spec_hash, cfg);
  ASSERT_TRUE(backend.ok()) << backend.error().message;
  EXPECT_EQ(cache.stats().recompiles, 1u);
  EXPECT_EQ(cache.stats().disk_hits, 0u);

  // And the recompiled unit actually serves.
  Rng rng(31);
  InstPtr msg;
  while (msg == nullptr) msg = fuzz::random_message(protocol.original(), rng);
  Bytes interp, nat;
  ASSERT_TRUE(protocol.serialize_with(nullptr, *msg, 9, interp).ok());
  ASSERT_TRUE(protocol.serialize_with(backend->get(), *msg, 9, nat).ok());
  EXPECT_EQ(to_hex(nat), to_hex(interp));
}

/// A stale unit for the *same key* but different tables (as after a
/// generator change that shifts the fingerprint) is rebuilt: the file base
/// embeds the fingerprint, so the stale artifact is simply never found.
TEST(NativeCacheTest, FingerprintIsPartOfTheArtifactName) {
  auto a = compile_spec(fuzztest::kNetDemoSpec, 1, 1);
  auto b = compile_spec(fuzztest::kNetDemoSpec, 2, 1);
  const std::uint64_t h = ProtocolCache::hash_spec(fuzztest::kNetDemoSpec);
  EXPECT_NE(NativeCompiler::cache_file_base(a, h, 1, 1),
            NativeCompiler::cache_file_base(b, h, 1, 2));
  EXPECT_EQ(NativeCompiler::cache_file_base(a, h, 1, 1),
            NativeCompiler::cache_file_base(a, h, 1, 1));
}

}  // namespace
}  // namespace protoobf
