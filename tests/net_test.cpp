// Socket-transport tests: event loop, echo round trips, sharding, the
// truncated-vs-malformed taxonomy over real connections, and backpressure.
//
// The load-bearing properties (ISSUE 4 acceptance):
//   * messages exchanged over loopback sockets are byte-identical to the
//     in-memory Channel path for the same (protocol, message, seed);
//   * a peer that disappears mid-frame — at any random cut point — is
//     reported as Truncated on close, never as Malformed;
//   * a slow reader trips the high-watermark backpressure signal and the
//     writable callback fires once the queue drains.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include "core/protoobf.hpp"
#include "net/connector.hpp"
#include "runtime/parse.hpp"
#include "net/server.hpp"
#include "session/protocol_cache.hpp"
#include "util/rng.hpp"

namespace protoobf {
namespace {

using namespace protoobf::net;

constexpr std::string_view kSpec = R"(
protocol NetDemo
msg: seq end {
  tag: terminal fixed(2)
  blen: terminal fixed(2)
  body: terminal length(blen)
}
)";

ObfuscationConfig config_of(std::uint64_t seed, int per_node) {
  ObfuscationConfig cfg;
  cfg.seed = seed;
  cfg.per_node = per_node;
  return cfg;
}

std::shared_ptr<const ObfuscatedProtocol> compile(std::uint64_t seed,
                                                  int per_node) {
  ProtocolCache cache;
  auto entry = cache.get_or_compile(kSpec, config_of(seed, per_node));
  EXPECT_TRUE(entry.ok()) << entry.error().message;
  return *entry;
}

/// A canonicalized random message (tag + body user data, blen derived).
Message random_message(const Graph& g, Rng& rng) {
  Message msg(g);
  Bytes tag(2);
  Bytes body(static_cast<std::size_t>(rng.between(1, 40)));
  for (Byte& b : tag) b = static_cast<Byte>(rng.between('A', 'Z'));
  for (Byte& b : body) b = static_cast<Byte>(rng.between('a', 'z'));
  EXPECT_TRUE(msg.set("tag", std::move(tag)).ok());
  EXPECT_TRUE(msg.set("body", std::move(body)).ok());
  return msg;
}

bool wait_for(const std::function<bool()>& cond,
              std::chrono::milliseconds timeout =
                  std::chrono::milliseconds(5000)) {
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  while (!cond()) {
    if (std::chrono::steady_clock::now() >= deadline) return false;
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  return true;
}

/// Blocking loopback client socket (the "simple peer" side of the tests —
/// the framework side under test is the nonblocking server).
int blocking_client(std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  EXPECT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr), 0)
      << std::strerror(errno);
  return fd;
}

/// Echo server over `protocol`: parses every message and serializes it
/// right back with a per-connection deterministic seed (messages_in after
/// the increment, i.e. 1, 2, 3...).
std::unique_ptr<Server> echo_server(
    std::shared_ptr<const ObfuscatedProtocol> protocol, Server::Config cfg,
    std::atomic<bool>* saw_malformed_close = nullptr,
    std::atomic<std::uint64_t>* closes = nullptr) {
  auto server = std::make_unique<Server>(
      protocol, length_prefix_framer_factory(), cfg);
  server->on_accept([saw_malformed_close, closes](Connection& conn) {
    conn.on_message([](Connection& c, Expected<InstPtr> msg) {
      if (!msg.ok()) return;  // per-message parse error: stream continues
      (void)c.send(**msg, c.stats().messages_in);
    });
    conn.on_close([saw_malformed_close, closes](Connection&,
                                                const Error* err) {
      if (saw_malformed_close != nullptr && err != nullptr &&
          err->kind == ErrorKind::Malformed) {
        saw_malformed_close->store(true);
      }
      if (closes != nullptr) closes->fetch_add(1);
    });
  });
  EXPECT_TRUE(server->start().ok());
  return server;
}

// --- event loop -------------------------------------------------------------

TEST(EventLoop, CrossThreadPostRunsOnTheLoop) {
  EventLoop loop;
  std::atomic<int> ran{0};
  std::thread poster([&] {
    for (int i = 0; i < 10; ++i) loop.post([&] { ++ran; });
  });
  poster.join();
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::seconds(5);
  while (ran.load() < 10 && std::chrono::steady_clock::now() < deadline) {
    loop.run_once(50);
  }
  EXPECT_EQ(ran.load(), 10);
}

TEST(EventLoop, TimersFireInOrderAndCancelLazily) {
  EventLoop loop;
  std::vector<int> order;
  loop.add_timer(std::chrono::milliseconds(30), [&] { order.push_back(2); });
  loop.add_timer(std::chrono::milliseconds(5), [&] { order.push_back(1); });
  const auto cancelled =
      loop.add_timer(std::chrono::milliseconds(10), [&] { order.push_back(9); });
  loop.cancel_timer(cancelled);

  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (order.size() < 2 && std::chrono::steady_clock::now() < deadline) {
    loop.run_once(50);
  }
  ASSERT_EQ(order.size(), 2u);
  EXPECT_EQ(order[0], 1);
  EXPECT_EQ(order[1], 2);
}

TEST(EventLoop, PeriodicTimerRepeatsUntilCancelledFromItsOwnCallback) {
  EventLoop loop;
  int fires = 0;
  EventLoop::TimerId id = 0;
  id = loop.add_timer(
      std::chrono::milliseconds(1),
      [&] {
        if (++fires == 3) loop.cancel_timer(id);
      },
      std::chrono::milliseconds(1));
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (fires < 3 && std::chrono::steady_clock::now() < deadline) {
    loop.run_once(20);
  }
  EXPECT_EQ(fires, 3);
  // A few extra rounds must not fire the cancelled timer again.
  for (int i = 0; i < 5; ++i) loop.run_once(5);
  EXPECT_EQ(fires, 3);
}

// --- echo round trip through Connector/Connection ---------------------------

TEST(NetEcho, ConnectorClientRoundTripsThroughShardedServer) {
  auto protocol = compile(2018, 2);
  ASSERT_NE(protocol, nullptr);
  auto g = Framework::load_spec(kSpec).value();

  // Round-robin handoff mode: shard 0 accepts, connections run on the
  // other shards' threads too.
  Server::Config cfg;
  cfg.shards = 2;
  cfg.reuse_port = false;
  auto server = echo_server(protocol, cfg);

  constexpr std::size_t kMessages = 8;
  Rng rng(7);
  std::vector<Message> sent;
  for (std::size_t i = 0; i < kMessages; ++i) {
    sent.push_back(random_message(g, rng));
    // What the echo must compare equal to: the canonical form.
    ASSERT_TRUE(protocol->canonicalize(sent.back().root()).ok());
  }

  EventLoop client_loop;
  auto framer = std::make_unique<LengthPrefixFramer>();
  auto conn = Connector::dial(client_loop, {"127.0.0.1", server->port()},
                              protocol, std::move(framer), {});
  ASSERT_TRUE(conn.ok()) << conn.error().message;

  std::atomic<std::size_t> echoed{0};
  std::atomic<bool> mismatch{false};
  (*conn)->on_message([&](Connection&, Expected<InstPtr> msg) {
    ASSERT_TRUE(msg.ok()) << msg.error().message;
    const std::size_t i = echoed.load();
    if (i < sent.size() && !ast::equal(**msg, sent[i].root())) {
      mismatch.store(true);
    }
    echoed.fetch_add(1);
  });
  ASSERT_TRUE((*conn)->open().ok());

  std::thread client_thread([&] { client_loop.run(); });
  Connection* raw = conn->get();
  for (std::size_t i = 0; i < kMessages; ++i) {
    client_loop.post([raw, &sent, i] {
      EXPECT_TRUE(raw->send(sent[i].root(), 100 + i).ok());
    });
  }
  EXPECT_TRUE(wait_for([&] { return echoed.load() == kMessages; }))
      << "echoed " << echoed.load() << "/" << kMessages;
  EXPECT_FALSE(mismatch.load());

  client_loop.post([raw] { raw->close(); });
  client_loop.stop();
  client_thread.join();
  // Leak check while the shards are still alive (stats() reads them):
  // the server must observe the client's close and retire the connection.
  EXPECT_TRUE(wait_for([&] { return server->stats().active == 0; }));
  server->stop();
}

TEST(NetEcho, AsyncConnectorResolvesOnTheLoop) {
  auto protocol = compile(2018, 1);
  auto server = echo_server(protocol, {});

  EventLoop loop;
  Connector connector(loop);
  std::unique_ptr<Connection> conn;
  bool failed = false;
  connector.connect({"127.0.0.1", server->port()}, protocol,
                    std::make_unique<LengthPrefixFramer>(), {},
                    [&](Expected<std::unique_ptr<Connection>> result) {
                      if (result.ok()) {
                        conn = std::move(*result);
                      } else {
                        failed = true;
                      }
                    });
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (conn == nullptr && !failed &&
         std::chrono::steady_clock::now() < deadline) {
    loop.run_once(50);
  }
  ASSERT_TRUE(conn != nullptr) << "async connect did not resolve";

  // One echo through the async-connected channel, loop pumped inline.
  auto g = Framework::load_spec(kSpec).value();
  Rng rng(11);
  Message msg = random_message(g, rng);
  ASSERT_TRUE(protocol->canonicalize(msg.root()).ok());
  bool got_echo = false;
  conn->on_message([&](Connection&, Expected<InstPtr> reply) {
    ASSERT_TRUE(reply.ok());
    EXPECT_TRUE(ast::equal(**reply, msg.root()));
    got_echo = true;
  });
  ASSERT_TRUE(conn->open().ok());
  ASSERT_TRUE(conn->send(msg.root(), 5).ok());
  while (!got_echo && std::chrono::steady_clock::now() < deadline) {
    loop.run_once(50);
  }
  EXPECT_TRUE(got_echo);
  conn->close();
  server->stop();
}

TEST(NetEcho, SendBeforeOpenFlushesOnceOpened) {
  auto protocol = compile(2018, 1);
  auto g = Framework::load_spec(kSpec).value();
  auto server = echo_server(protocol, {});

  EventLoop loop;
  auto conn = Connector::dial(loop, {"127.0.0.1", server->port()}, protocol,
                              std::make_unique<LengthPrefixFramer>(), {});
  ASSERT_TRUE(conn.ok()) << conn.error().message;

  // Queue traffic on the unopened connection — a client greeting. Big
  // enough that part of it outlives the kernel's immediate appetite, so
  // the flush genuinely depends on open() arming EPOLLOUT.
  Rng rng(19);
  std::vector<Message> sent;
  constexpr std::size_t kMessages = 5;
  for (std::size_t i = 0; i < kMessages; ++i) {
    sent.push_back(random_message(g, rng));
    ASSERT_TRUE(protocol->canonicalize(sent.back().root()).ok());
    ASSERT_TRUE((*conn)->send(sent[i].root(), 70 + i).ok());
  }

  std::size_t echoed = 0;
  (*conn)->on_message([&](Connection&, Expected<InstPtr> msg) {
    ASSERT_TRUE(msg.ok());
    EXPECT_TRUE(ast::equal(**msg, sent[echoed].root()));
    ++echoed;
  });
  ASSERT_TRUE((*conn)->open().ok());

  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (echoed < kMessages && std::chrono::steady_clock::now() < deadline) {
    loop.run_once(50);
  }
  EXPECT_EQ(echoed, kMessages);
  (*conn)->close();
  server->stop();
}

TEST(NetEcho, AsyncConnectToDeadPortReportsError) {
  // Grab an ephemeral port, then close the listener so nothing serves it.
  auto doomed = listen_tcp({"127.0.0.1", 0}, 1);
  ASSERT_TRUE(doomed.ok());
  const std::uint16_t port = local_port(doomed->get()).value();
  doomed->reset();

  auto protocol = compile(2018, 1);
  EventLoop loop;
  Connector connector(loop);
  bool resolved = false;
  bool failed = false;
  connector.connect({"127.0.0.1", port}, protocol,
                    std::make_unique<LengthPrefixFramer>(), {},
                    [&](Expected<std::unique_ptr<Connection>> result) {
                      resolved = true;
                      failed = !result.ok();
                    });
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (!resolved && std::chrono::steady_clock::now() < deadline) {
    loop.run_once(50);
  }
  EXPECT_TRUE(resolved);
  EXPECT_TRUE(failed);
}

// --- byte identity vs the in-memory channel path ----------------------------

TEST(NetEcho, EchoBytesAreIdenticalToTheInMemoryChannelPath) {
  auto protocol = compile(2018, 2);
  auto g = Framework::load_spec(kSpec).value();
  auto server = echo_server(protocol, {});

  constexpr std::size_t kMessages = 12;
  Rng rng(13);
  std::vector<Message> sent;
  for (std::size_t i = 0; i < kMessages; ++i) {
    sent.push_back(random_message(g, rng));
    ASSERT_TRUE(protocol->canonicalize(sent.back().root()).ok());
  }

  // The in-memory replica of the server's send path: same protocol, same
  // framer type, same seeds (messages_in counts 1, 2, 3...). What it emits
  // is what the socket must carry, byte for byte.
  Session replica_session(protocol);
  LengthPrefixFramer replica_framer;
  Channel replica(replica_session, replica_framer);
  Bytes expected_stream;
  for (std::size_t i = 0; i < kMessages; ++i) {
    auto framed = replica.send(sent[i].root(), i + 1);
    ASSERT_TRUE(framed.ok()) << framed.error().message;
    append(expected_stream, *framed);
  }

  // Client sends through its own channel and captures the raw echo bytes.
  Session client_session(protocol);
  LengthPrefixFramer client_framer;
  Channel client_channel(client_session, client_framer);
  const int fd = blocking_client(server->port());
  Rng chunk_rng(17);
  for (std::size_t i = 0; i < kMessages; ++i) {
    auto framed = client_channel.send(sent[i].root(), 100 + i);
    ASSERT_TRUE(framed.ok());
    // Random chunk sizes exercise the server's partial-read reassembly.
    std::size_t off = 0;
    while (off < framed->size()) {
      const std::size_t n = std::min<std::size_t>(
          framed->size() - off,
          static_cast<std::size_t>(chunk_rng.between(1, 23)));
      ASSERT_EQ(::send(fd, framed->data() + off, n, 0),
                static_cast<ssize_t>(n));
      off += n;
    }
  }

  Bytes echoed;
  Byte buf[4096];
  while (echoed.size() < expected_stream.size()) {
    const ssize_t n = ::recv(fd, buf, sizeof buf, 0);
    ASSERT_GT(n, 0) << "peer closed after " << echoed.size() << "/"
                    << expected_stream.size() << " bytes";
    echoed.insert(echoed.end(), buf, buf + n);
  }
  EXPECT_EQ(echoed, expected_stream);
  ::close(fd);
  server->stop();
}

// --- multi-client soak: random chunks, random close points ------------------

TEST(NetSoak, TruncatedClosesAreNeverReportedMalformed) {
  auto protocol = compile(2018, 2);
  auto g = Framework::load_spec(kSpec).value();

  std::atomic<bool> saw_malformed{false};
  std::atomic<std::uint64_t> closes{0};
  Server::Config cfg;
  cfg.shards = 2;
  cfg.reuse_port = true;  // kernel-spread accepts across both shards
  auto server = echo_server(protocol, cfg, &saw_malformed, &closes);

  constexpr std::size_t kClients = 6;
  constexpr std::size_t kMessagesPerClient = 20;
  Rng rng(23);

  std::size_t complete_sent = 0;
  for (std::size_t c = 0; c < kClients; ++c) {
    Session session(protocol);
    LengthPrefixFramer framer;
    Channel channel(session, framer);
    const int fd = blocking_client(server->port());

    const bool cut_mid_frame = c % 2 == 0;
    for (std::size_t i = 0; i < kMessagesPerClient; ++i) {
      Message msg = random_message(g, rng);
      auto framed = channel.send(msg.root(), c * 1000 + i);
      ASSERT_TRUE(framed.ok());

      const bool last = i + 1 == kMessagesPerClient;
      // Random cut point strictly inside the frame (a cut at offset 0
      // sends nothing — that is a clean close, covered by the odd
      // clients' last message).
      const std::size_t cut =
          last && cut_mid_frame
              ? 1 + static_cast<std::size_t>(
                        rng.between(0, static_cast<int>(framed->size()) - 2))
              : framed->size();
      std::size_t off = 0;
      while (off < cut) {
        const std::size_t n = std::min<std::size_t>(
            cut - off, static_cast<std::size_t>(rng.between(1, 19)));
        ASSERT_EQ(::send(fd, framed->data() + off, n, 0),
                  static_cast<ssize_t>(n));
        off += n;
      }
      if (cut == framed->size()) ++complete_sent;
    }
    ::close(fd);  // half the clients die mid-frame, half cleanly
  }

  EXPECT_TRUE(wait_for([&] { return closes.load() == kClients; }))
      << closes.load() << "/" << kClients << " closes";
  EXPECT_FALSE(saw_malformed.load())
      << "a truncated close was misreported as Malformed";

  const Server::Stats stats = server->stats();
  EXPECT_EQ(stats.accepted, kClients);
  server->stop();
  (void)complete_sent;  // the echoes themselves are asserted elsewhere
}

// --- backpressure -----------------------------------------------------------

TEST(NetBackpressure, HighWatermarkPausesAndWritableFiresOnDrain) {
  auto protocol = compile(2018, 1);
  auto g = Framework::load_spec(kSpec).value();

  Message big(g);
  ASSERT_TRUE(big.set("tag", to_bytes("XX")).ok());
  ASSERT_TRUE(big.set("body", Bytes(512, 'x')).ok());
  ASSERT_TRUE(protocol->canonicalize(big.root()).ok());

  std::atomic<bool> hit_watermark{false};
  std::atomic<bool> writable_fired{false};
  std::atomic<std::uint64_t> sent_count{0};

  Server::Config cfg;
  // A tiny SO_SNDBUF forces the kernel to refuse bytes almost at once, so
  // the user-space queue (and the watermark) does the flow control.
  cfg.connection.send_buffer = 4096;
  cfg.connection.high_watermark = 32 * 1024;

  Server server(protocol, length_prefix_framer_factory(), cfg);
  server.on_accept([&](Connection& conn) {
    conn.on_writable([&](Connection& c) {
      writable_fired.store(true);
      c.close();  // graceful: flush the tail, then FIN
    });
    conn.on_message([&](Connection& c, Expected<InstPtr> msg) {
      if (!msg.ok()) return;
      // Flood until the watermark trips: a well-behaved producer stops
      // here and waits for on_writable.
      std::size_t guard = 0;
      while (c.writable()) {
        ASSERT_TRUE(c.send(big.root(), sent_count.fetch_add(1) + 1).ok());
        ASSERT_LT(++guard, 100000u) << "watermark never tripped";
      }
      hit_watermark.store(true);
    });
  });
  ASSERT_TRUE(server.start().ok());

  const int fd = blocking_client(server.port());
  // Trigger the flood.
  Session session(protocol);
  LengthPrefixFramer framer;
  Channel channel(session, framer);
  auto trigger = channel.send(big.root(), 7);
  ASSERT_TRUE(trigger.ok());
  ASSERT_EQ(::send(fd, trigger->data(), trigger->size(), 0),
            static_cast<ssize_t>(trigger->size()));

  ASSERT_TRUE(wait_for([&] { return hit_watermark.load(); }));

  // Now drain: read everything until the server's graceful close.
  std::size_t received = 0;
  Byte buf[8192];
  for (;;) {
    const ssize_t n = ::recv(fd, buf, sizeof buf, 0);
    if (n <= 0) break;
    channel.on_bytes(BytesView(buf, static_cast<std::size_t>(n)));
    while (auto m = channel.receive()) {
      ASSERT_TRUE(m->ok()) << (*m).error().message;
      ++received;
    }
  }
  ::close(fd);

  EXPECT_TRUE(writable_fired.load());
  EXPECT_EQ(received, sent_count.load());
  EXPECT_EQ(channel.reader().buffered(), 0u) << "server cut a frame short";
  server.stop();
}

// --- idle timeout -----------------------------------------------------------

TEST(NetIdle, IdleTimeoutClosesWithTruncatedTaxonomy) {
  auto protocol = compile(2018, 1);

  std::atomic<bool> closed{false};
  std::atomic<bool> truncated{false};
  Server::Config cfg;
  cfg.connection.idle_timeout = std::chrono::milliseconds(80);
  Server server(protocol, length_prefix_framer_factory(), cfg);
  server.on_accept([&](Connection& conn) {
    conn.on_close([&](Connection&, const Error* err) {
      truncated.store(err != nullptr && err->kind == ErrorKind::Truncated);
      closed.store(true);
    });
  });
  ASSERT_TRUE(server.start().ok());

  const int fd = blocking_client(server.port());
  // A frame prefix, then silence: the idle sweep must reap the connection.
  const Byte partial[3] = {0, 0, 0};
  ASSERT_EQ(::send(fd, partial, sizeof partial, 0), 3);

  EXPECT_TRUE(wait_for([&] { return closed.load(); }));
  EXPECT_TRUE(truncated.load()) << "idle close not classified Truncated";
  ::close(fd);
  server.stop();
}

// --- per-connection framer state: obfuscated framing over sockets -----------

TEST(NetObfFraming, ObfuscatedFramerFactoryServesConcurrentClients) {
  auto protocol = compile(2018, 2);
  auto g = Framework::load_spec(kSpec).value();

  // Obfuscated frame boundary: compile a stream-safe frame protocol.
  constexpr std::string_view kFrameSpec = R"(
protocol Frame
frame: seq end {
  flen: terminal fixed(4)
  fbody: terminal length(flen)
}
)";
  ProtocolCache cache;
  std::shared_ptr<const ObfuscatedProtocol> framing;
  for (std::uint64_t seed = 13; seed < 13 + 64; ++seed) {
    auto entry = cache.get_or_compile(kFrameSpec, config_of(seed, 2));
    if (!entry.ok()) continue;
    if (!stream_safe((*entry)->wire_graph()).ok()) continue;
    if (ObfuscatedFramer::create(*entry).ok()) {
      framing = *entry;
      break;
    }
  }
  ASSERT_NE(framing, nullptr) << "no stream-safe frame seed found";

  std::atomic<bool> saw_malformed{false};
  std::atomic<std::uint64_t> closes{0};
  Server server(protocol, obfuscated_framer_factory(framing), {});
  server.on_accept([&](Connection& conn) {
    conn.on_message([](Connection& c, Expected<InstPtr> msg) {
      if (!msg.ok()) return;
      (void)c.send(**msg, c.stats().messages_in);
    });
    conn.on_close([&](Connection&, const Error* err) {
      if (err != nullptr && err->kind == ErrorKind::Malformed) {
        saw_malformed.store(true);
      }
      closes.fetch_add(1);
    });
  });
  ASSERT_TRUE(server.start().ok());

  // Two interleaved clients with independent framer decode state.
  constexpr std::size_t kMessages = 6;
  Rng rng(31);
  struct Client {
    std::unique_ptr<Session> session;
    std::unique_ptr<ObfuscatedFramer> framer;
    std::unique_ptr<Channel> channel;
    int fd = -1;
    std::size_t echoed = 0;
    std::vector<Message> sent;
  };
  Client clients[2];
  for (Client& c : clients) {
    c.session = std::make_unique<Session>(protocol);
    c.framer = ObfuscatedFramer::create(framing).value();
    c.channel = std::make_unique<Channel>(*c.session, *c.framer);
    c.fd = blocking_client(server.port());
  }
  for (std::size_t i = 0; i < kMessages; ++i) {
    for (Client& c : clients) {
      c.sent.push_back(random_message(g, rng));
      ASSERT_TRUE(protocol->canonicalize(c.sent.back().root()).ok());
      auto framed = c.channel->send(c.sent.back().root(), i + 50);
      ASSERT_TRUE(framed.ok()) << framed.error().message;
      ASSERT_EQ(::send(c.fd, framed->data(), framed->size(), 0),
                static_cast<ssize_t>(framed->size()));
    }
  }
  for (Client& c : clients) {
    Byte buf[4096];
    while (c.echoed < kMessages) {
      const ssize_t n = ::recv(c.fd, buf, sizeof buf, 0);
      ASSERT_GT(n, 0);
      c.channel->on_bytes(BytesView(buf, static_cast<std::size_t>(n)));
      while (auto m = c.channel->receive()) {
        ASSERT_TRUE(m->ok()) << (*m).error().message;
        EXPECT_TRUE(ast::equal(***m, c.sent[c.echoed].root()));
        ++c.echoed;
      }
      ASSERT_FALSE(c.channel->failed()) << c.channel->error().message;
    }
    ::close(c.fd);
  }
  EXPECT_TRUE(wait_for([&] { return closes.load() == 2; }));
  EXPECT_FALSE(saw_malformed.load());
  server.stop();
}

TEST(NetObfFraming, DelimiterBoundedFramesResumeAcrossSocketFragments) {
  // ISSUE 5: socket delivery of a delimiter-bounded frame spec rides the
  // resumable prefix parse — a fragmented frame is continued, not
  // re-parsed from byte 0, on every readiness callback. The spec carries
  // no length field anywhere, so without resumption every delivered
  // fragment would re-walk the whole accumulated front.
  constexpr std::string_view kDelimFrameSpec = R"(
protocol DelimFrame
frame: seq end {
  fbody: terminal delimited("\r\n") ascii
}
)";
  // Identity compilations: the inner NetDemo wire bytes (A-Z tags, a-z
  // bodies, a small binary length) can never contain "\r\n", so delimiter
  // containment at encode time holds for every message.
  auto protocol = compile(1, 0);
  auto g = Framework::load_spec(kSpec).value();
  ProtocolCache cache;
  auto framing = cache.get_or_compile(kDelimFrameSpec, config_of(1, 0));
  ASSERT_TRUE(framing.ok()) << framing.error().message;
  ObfuscatedFramer::Config framer_cfg;
  framer_cfg.payload_path = "fbody";

  // Per-connection resume accounting, read server-side at close.
  std::atomic<std::uint64_t> attempts{0}, resumed{0}, frames_in{0};
  std::atomic<std::uint64_t> closes{0};
  std::atomic<bool> saw_malformed{false};
  Server server(protocol,
                obfuscated_framer_factory(*framing, framer_cfg), {});
  server.on_accept([&](Connection& conn) {
    conn.on_message([&](Connection& c, Expected<InstPtr> msg) {
      if (!msg.ok()) return;
      frames_in.fetch_add(1);
      (void)c.send(**msg, c.stats().messages_in);
    });
    conn.on_close([&](Connection& c, const Error* err) {
      if (err != nullptr && err->kind == ErrorKind::Malformed) {
        saw_malformed.store(true);
      }
      if (const auto* obf = dynamic_cast<const ObfuscatedFramer*>(
              &c.channel().framer())) {
        attempts.fetch_add(obf->resume_stats().attempts);
        resumed.fetch_add(obf->resume_stats().resumed);
      }
      closes.fetch_add(1);
    });
  });
  ASSERT_TRUE(server.start().ok());

  Session session(protocol);
  auto client_framer = ObfuscatedFramer::create(*framing, framer_cfg).value();
  Channel channel(session, *client_framer);
  const int fd = blocking_client(server.port());

  constexpr std::size_t kMessages = 4;
  Rng rng(47);
  std::vector<Message> sent;
  for (std::size_t i = 0; i < kMessages; ++i) {
    sent.push_back(random_message(g, rng));
    ASSERT_TRUE(protocol->canonicalize(sent.back().root()).ok());
    auto framed = channel.send(sent.back().root(), i + 7);
    ASSERT_TRUE(framed.ok()) << framed.error().message;
    // Trickle each frame in small slices with pauses, so the server's
    // readiness loop sees the frame arrive in fragments.
    for (std::size_t off = 0; off < framed->size(); off += 3) {
      const std::size_t n = std::min<std::size_t>(3, framed->size() - off);
      ASSERT_EQ(::send(fd, framed->data() + off, n, 0),
                static_cast<ssize_t>(n));
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
  }

  std::size_t echoed = 0;
  Byte buf[4096];
  while (echoed < kMessages) {
    const ssize_t n = ::recv(fd, buf, sizeof buf, 0);
    ASSERT_GT(n, 0);
    channel.on_bytes(BytesView(buf, static_cast<std::size_t>(n)));
    while (auto m = channel.receive()) {
      ASSERT_TRUE(m->ok()) << (*m).error().message;
      EXPECT_TRUE(ast::equal(***m, sent[echoed].root()));
      ++echoed;
    }
    ASSERT_FALSE(channel.failed()) << channel.error().message;
  }
  ::close(fd);
  EXPECT_TRUE(wait_for([&] { return closes.load() == 1; }));
  EXPECT_FALSE(saw_malformed.load());
  EXPECT_EQ(frames_in.load(), kMessages);
  // The property under test: *if* the kernel delivered any frame in
  // fragments (attempts > one per frame), the retries resumed a suspended
  // parse instead of restarting. Fully coalesced delivery (possible on a
  // loaded machine) trivially satisfies it with attempts == frames.
  EXPECT_TRUE(resumed.load() > 0 || attempts.load() <= frames_in.load())
      << "attempts=" << attempts.load() << " resumed=" << resumed.load();
  server.stop();
}

// --- timer dispatch re-entrancy (ISSUE 8 satellites) ------------------------

TEST(EventLoop, PeriodicTimerCancelsItselfDuringItsOwnDispatch) {
  EventLoop loop;
  int fired = 0;
  EventLoop::TimerId id = 0;
  id = loop.add_timer(std::chrono::milliseconds(5),
                      [&] {
                        ++fired;
                        // Self-cancel from inside the callback: the
                        // periodic re-arm below it must be suppressed.
                        loop.cancel_timer(id);
                      },
                      std::chrono::milliseconds(5));
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(120);
  while (std::chrono::steady_clock::now() < deadline) loop.run_once(10);
  EXPECT_EQ(fired, 1) << "a self-cancelled periodic timer refired";
}

TEST(EventLoop, TimerReAddedDuringItsOwnDispatchFiresOnSchedule) {
  EventLoop loop;
  std::vector<char> order;
  loop.add_timer(std::chrono::milliseconds(5), [&] {
    order.push_back('a');
    // Re-add from inside dispatch: the new timer joins the heap and fires
    // on its own deadline — neither recursively in this batch nor never.
    loop.add_timer(std::chrono::milliseconds(5),
                   [&] { order.push_back('c'); });
  });
  loop.add_timer(std::chrono::milliseconds(30), [&] { order.push_back('b'); });
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(200);
  while (order.size() < 3 && std::chrono::steady_clock::now() < deadline) {
    loop.run_once(10);
  }
  EXPECT_EQ(order, (std::vector<char>{'a', 'c', 'b'}));
}

TEST(EventLoop, PeriodicTimerCancelsItselfAndReArmsAReplacement) {
  EventLoop loop;
  int periodic = 0;
  int replacement = 0;
  EventLoop::TimerId id = 0;
  id = loop.add_timer(std::chrono::milliseconds(5),
                      [&] {
                        if (++periodic == 2) {
                          // The hardest interleaving: cancel the firing
                          // timer AND grow the heap in the same callback.
                          loop.cancel_timer(id);
                          loop.add_timer(std::chrono::milliseconds(5),
                                         [&] { ++replacement; });
                        }
                      },
                      std::chrono::milliseconds(5));
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(200);
  while (replacement == 0 && std::chrono::steady_clock::now() < deadline) {
    loop.run_once(10);
  }
  EXPECT_EQ(periodic, 2);
  EXPECT_EQ(replacement, 1);
}

// --- round-robin handoff at the per-shard cap -------------------------------

TEST(NetServer, RoundRobinHandoffSkipsShardAtItsConnectionCap) {
  auto protocol = compile(2018, 1);
  Server::Config cfg;
  cfg.shards = 3;
  cfg.reuse_port = false;  // shard 0 accepts, hands fds around
  cfg.shard_max_connections = 1;
  auto server = echo_server(protocol, cfg);

  // c1 -> shard 0, c2 -> shard 1 (plain rotation).
  const int c1 = blocking_client(server->port());
  ASSERT_TRUE(wait_for([&] { return server->stats().active == 1; }));
  const int c2 = blocking_client(server->port());
  ASSERT_TRUE(wait_for([&] { return server->stats().active == 2; }));
  EXPECT_EQ(server->shard_occupancy(0), 1u);
  EXPECT_EQ(server->shard_occupancy(1), 1u);

  // Free shard 1, fill shard 2: the rotation cursor now points at shard 0,
  // which is AT its cap.
  ::close(c2);
  ASSERT_TRUE(wait_for([&] { return server->stats().active == 1; }));
  const int c3 = blocking_client(server->port());
  ASSERT_TRUE(wait_for([&] { return server->stats().active == 2; }));
  EXPECT_EQ(server->shard_occupancy(2), 1u);

  // The handoff must skip at-cap shard 0 and land on shard 1 — the fd is
  // served, not dropped.
  const int c4 = blocking_client(server->port());
  ASSERT_TRUE(wait_for([&] { return server->stats().active == 3; }));
  EXPECT_EQ(server->shard_occupancy(0), 1u);
  EXPECT_EQ(server->shard_occupancy(1), 1u);
  EXPECT_EQ(server->shard_occupancy(2), 1u);

  // Proof the skipped-to connection really works: echo one message on it.
  auto g = Framework::load_spec(kSpec).value();
  Rng rng(23);
  Message msg = random_message(g, rng);
  ASSERT_TRUE(protocol->canonicalize(msg.root()).ok());
  Session session(protocol);
  LengthPrefixFramer framer;
  Channel channel(session, framer);
  auto framed = channel.send(msg.root(), 9);
  ASSERT_TRUE(framed.ok());
  ASSERT_EQ(::send(c4, framed->data(), framed->size(), 0),
            static_cast<ssize_t>(framed->size()));
  Byte buf[4096];
  InstPtr echo;
  while (echo == nullptr) {
    const ssize_t n = ::recv(c4, buf, sizeof buf, 0);
    ASSERT_GT(n, 0);
    channel.on_bytes(BytesView(buf, static_cast<std::size_t>(n)));
    if (auto m = channel.receive()) {
      ASSERT_TRUE(m->ok());
      echo = std::move(**m);
    }
  }
  EXPECT_TRUE(ast::equal(*echo, msg.root()));

  ::close(c1);
  ::close(c3);
  ::close(c4);
  server->stop();
}

}  // namespace
}  // namespace protoobf
