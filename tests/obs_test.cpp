// Observability layer: sharded instruments, histogram quantile accuracy
// against a sorted-vector oracle, exposition golden output, the trace ring
// under concurrent writers, and the admin HTTP endpoint end to end.
#include <gtest/gtest.h>

#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cmath>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "session/worker_pool.hpp"
#include "util/rng.hpp"

namespace protoobf {
namespace {

// Restores the global kill-switch no matter how a test exits.
struct EnabledGuard {
  ~EnabledGuard() { obs::set_enabled(true); }
};

TEST(Obs, CounterConcurrentUnderWorkerPool) {
  obs::Counter counter;
  WorkerPool pool;
  constexpr std::size_t kAdds = 1 << 20;
  // Every shard thread hammers the same logical counter; the padded slots
  // must make the total exact, not approximate.
  pool.parallel_for(kAdds, [&counter](std::size_t, std::size_t begin,
                                      std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) counter.add(1);
  });
  EXPECT_EQ(counter.value(), kAdds);

  // Weighted adds from raw threads on top of the pool's total.
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&counter] {
      for (int i = 0; i < 10000; ++i) counter.add(3);
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(counter.value(), kAdds + 4u * 10000u * 3u);

  counter.reset();
  EXPECT_EQ(counter.value(), 0u);
}

TEST(Obs, GaugeOperations) {
  obs::Gauge gauge;
  gauge.add(5);
  gauge.sub(2);
  EXPECT_EQ(gauge.value(), 3);
  gauge.set(-7);
  EXPECT_EQ(gauge.value(), -7);
  gauge.set_max(10);
  EXPECT_EQ(gauge.value(), 10);
  gauge.set_max(4);  // lower than current: no change
  EXPECT_EQ(gauge.value(), 10);
  gauge.reset();
  EXPECT_EQ(gauge.value(), 0);
}

TEST(Obs, HistogramBucketGeometry) {
  const std::uint64_t probes[] = {0,   1,    7,        8,
                                  9,   255,  1000000,  std::uint64_t{1} << 40,
                                  ~std::uint64_t{0} - 1};
  for (std::uint64_t v : probes) {
    const std::size_t idx = obs::Histogram::bucket_index(v);
    ASSERT_LT(idx, obs::Histogram::kBuckets) << v;
    const std::uint64_t floor = obs::Histogram::bucket_floor(idx);
    const std::uint64_t width = obs::Histogram::bucket_width(idx);
    EXPECT_LE(floor, v) << v;
    if (width < ~std::uint64_t{0} - floor) {
      EXPECT_LT(v, floor + width) << v;
    }
    if (v >= obs::Histogram::kSubBuckets) {
      // Log-linear promise: relative bucket width bounded by 1/kSubBuckets.
      EXPECT_LE(static_cast<double>(width) / static_cast<double>(floor),
                1.0 / obs::Histogram::kSubBuckets + 1e-9)
          << v;
    }
  }
}

TEST(Obs, HistogramSmallValuesExact) {
  obs::Histogram hist;
  for (std::uint64_t v = 0; v < 16; ++v) hist.record(v);
  const obs::Histogram::Snapshot snap = hist.snapshot();
  EXPECT_EQ(snap.count, 16u);
  EXPECT_EQ(snap.sum, 120u);
  EXPECT_EQ(snap.max, 15u);
  // Values below kSubBuckets*2 land in unit-wide buckets: quantiles are
  // exact nearest-rank values, not estimates.
  EXPECT_DOUBLE_EQ(hist.quantile(0.5), 7.0);   // rank ceil(8) -> value 7
  EXPECT_DOUBLE_EQ(hist.quantile(1.0), 15.0);  // the max itself
  EXPECT_DOUBLE_EQ(snap.p99, 15.0);            // rank ceil(15.84)=16 -> 15
}

TEST(Obs, HistogramQuantilesMatchSortedVectorOracle) {
  obs::Histogram hist;
  std::vector<std::uint64_t> oracle;
  Rng rng(20180625);
  constexpr std::size_t kSamples = 20000;
  oracle.reserve(kSamples);
  for (std::size_t i = 0; i < kSamples; ++i) {
    // Mixed magnitudes with a heavy tail, like real latency distributions.
    std::uint64_t v = 1 + rng.below(1000000);
    if (i % 97 == 0) v *= 1000;  // tail out to ~1e9
    hist.record(v);
    oracle.push_back(v);
  }
  std::sort(oracle.begin(), oracle.end());

  std::uint64_t sum = 0;
  for (std::uint64_t v : oracle) sum += v;
  const obs::Histogram::Snapshot snap = hist.snapshot();
  EXPECT_EQ(snap.count, kSamples);
  EXPECT_EQ(snap.sum, sum);
  EXPECT_EQ(snap.max, oracle.back());

  for (double q : {0.50, 0.90, 0.95, 0.99, 0.999}) {
    const std::uint64_t rank = static_cast<std::uint64_t>(
        std::ceil(q * static_cast<double>(kSamples)));
    const double exact = static_cast<double>(oracle[rank - 1]);
    const double est = hist.quantile(q);
    // Bucket-midpoint estimate: bounded relative error 1/kSubBuckets.
    EXPECT_NEAR(est, exact, exact / obs::Histogram::kSubBuckets + 1e-9)
        << "q=" << q;
  }
}

TEST(Obs, HistogramConcurrentRecords) {
  obs::Histogram hist;
  std::vector<std::thread> threads;
  constexpr std::uint64_t kPerThread = 50000;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&hist, t] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) {
        hist.record(static_cast<std::uint64_t>(t) * 1000 + (i % 100));
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(hist.count(), 4 * kPerThread);
  EXPECT_EQ(hist.snapshot().max, 3099u);
  hist.reset();
  EXPECT_EQ(hist.count(), 0u);
}

TEST(Obs, RegistryDeduplicatesBySeriesName) {
  obs::MetricsRegistry reg;
  obs::Counter& a = reg.counter("dup_total", "Help.");
  obs::Counter& b = reg.counter("dup_total", "Help.");
  EXPECT_EQ(&a, &b);
  obs::Counter& labeled = reg.counter("dup_total", "Help.", {{"shard", "0"}});
  EXPECT_NE(&a, &labeled);
  obs::Gauge& g1 = reg.gauge("depth", "Help.");
  obs::Gauge& g2 = reg.gauge("depth", "Help.");
  EXPECT_EQ(&g1, &g2);
  obs::Histogram& h1 = reg.histogram("lat_ns", "Help.");
  obs::Histogram& h2 = reg.histogram("lat_ns", "Help.");
  EXPECT_EQ(&h1, &h2);
}

TEST(Obs, PrometheusExpositionGolden) {
  obs::MetricsRegistry reg;
  // Registered out of name order on purpose: exposition sorts families.
  reg.counter("test_requests_total", "Requests.", {{"shard", "0"}}).add(5);
  reg.gauge("test_queue_depth", "Depth.").set(7);
  obs::Histogram& hist = reg.histogram("test_latency_ns", "Latency.");
  hist.record(1);
  hist.record(2);
  hist.record(3);

  const std::string expected =
      "# HELP test_latency_ns Latency.\n"
      "# TYPE test_latency_ns summary\n"
      "test_latency_ns{quantile=\"0.5\"} 2\n"
      "test_latency_ns{quantile=\"0.95\"} 3\n"
      "test_latency_ns{quantile=\"0.99\"} 3\n"
      "test_latency_ns_sum 6\n"
      "test_latency_ns_count 3\n"
      "test_latency_ns_max 3\n"
      "# HELP test_queue_depth Depth.\n"
      "# TYPE test_queue_depth gauge\n"
      "test_queue_depth 7\n"
      "# HELP test_requests_total Requests.\n"
      "# TYPE test_requests_total counter\n"
      "test_requests_total{shard=\"0\"} 5\n";
  EXPECT_EQ(reg.prometheus_text(), expected);
}

TEST(Obs, JsonSnapshotGolden) {
  obs::MetricsRegistry reg;
  reg.counter("test_requests_total", "Requests.", {{"shard", "0"}}).add(5);
  reg.gauge("test_queue_depth", "Depth.").set(7);
  obs::Histogram& hist = reg.histogram("test_latency_ns", "Latency.");
  hist.record(1);
  hist.record(2);
  hist.record(3);

  // Series names carry quotes; JSON keys escape them. Keys sort by series.
  const std::string expected =
      R"({"counters":{"test_requests_total{shard=\"0\"}":5},)"
      R"("gauges":{"test_queue_depth":7},)"
      R"("histograms":{"test_latency_ns":{"count":3,"sum":6,"max":3,)"
      R"("mean":2,"p50":2,"p95":3,"p99":3}}})"
      "\n";
  EXPECT_EQ(reg.json_snapshot(), expected);
}

TEST(Obs, ResetValuesKeepsRegistrations) {
  obs::MetricsRegistry reg;
  obs::Counter& c = reg.counter("r_total", "Help.");
  obs::Gauge& g = reg.gauge("r_depth", "Help.");
  obs::Histogram& h = reg.histogram("r_ns", "Help.");
  c.add(9);
  g.set(4);
  h.record(100);
  reg.reset_values();
  EXPECT_EQ(c.value(), 0u);
  EXPECT_EQ(g.value(), 0);
  EXPECT_EQ(h.count(), 0u);
  // Same addresses after reset: hot-path references stay valid.
  EXPECT_EQ(&c, &reg.counter("r_total", "Help."));
  const std::string text = reg.prometheus_text();
  EXPECT_NE(text.find("r_total 0\n"), std::string::npos);
}

TEST(Obs, KillSwitchStopsRecording) {
  EnabledGuard guard;
  obs::Counter counter;
  obs::Histogram hist;
  obs::set_enabled(false);
  EXPECT_FALSE(obs::enabled());
  counter.add(5);
  hist.record(42);
  EXPECT_EQ(counter.value(), 0u);
  EXPECT_EQ(hist.count(), 0u);
  obs::set_enabled(true);
  counter.add(5);
  hist.record(42);
  EXPECT_EQ(counter.value(), 5u);
  EXPECT_EQ(hist.count(), 1u);
}

TEST(Obs, TracerRecordsAndDumps) {
  obs::Tracer& tracer = obs::Tracer::global();
  tracer.clear();
  const std::uint64_t id = tracer.next_conn_id();
  EXPECT_LT(id, tracer.next_conn_id());  // ids are monotonic
  tracer.record(42, obs::TraceEvent::FrameIn, 512);
  tracer.record(42, obs::TraceEvent::Backpressure, 9000);
  tracer.record(43, obs::TraceEvent::Close, 1);
  const std::string dump = tracer.dump();
  EXPECT_NE(dump.find("conn=42"), std::string::npos);
  EXPECT_NE(dump.find("FrameIn"), std::string::npos);
  EXPECT_NE(dump.find("arg=512"), std::string::npos);
  EXPECT_NE(dump.find("Backpressure"), std::string::npos);
  EXPECT_NE(dump.find("Close"), std::string::npos);
  // max_events caps the render to the newest entries.
  const std::string capped = tracer.dump(1);
  EXPECT_EQ(std::count(capped.begin(), capped.end(), '\n'), 1);
  EXPECT_NE(capped.find("Close"), std::string::npos);
  tracer.clear();
  EXPECT_EQ(tracer.dump(), "");
}

TEST(Obs, TracerRingUnderConcurrentWriters) {
  obs::Tracer& tracer = obs::Tracer::global();
  tracer.clear();
  const std::uint64_t before = tracer.recorded();
  constexpr std::uint64_t kPerThread = 20000;  // well past kCapacity
  std::vector<std::thread> threads;
  std::atomic<bool> stop{false};
  // A reader racing the writers: torn slots must be dropped, not rendered.
  std::thread reader([&tracer, &stop] {
    while (!stop.load()) {
      (void)tracer.dump(64);
    }
  });
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&tracer, t] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) {
        tracer.record(static_cast<std::uint64_t>(t), obs::TraceEvent::FrameIn,
                      i);
      }
    });
  }
  for (auto& th : threads) th.join();
  stop.store(true);
  reader.join();
  EXPECT_EQ(tracer.recorded() - before, 4 * kPerThread);
  // The ring holds at most kCapacity survivors.
  const std::string dump = tracer.dump();
  EXPECT_LE(static_cast<std::size_t>(
                std::count(dump.begin(), dump.end(), '\n')),
            obs::Tracer::kCapacity);
  tracer.clear();
}

// Blocking loopback GET against the admin endpoint; returns the full
// response (headers + body), empty string on any failure.
std::string admin_get(std::uint16_t port, const std::string& path) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return "";
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    ::close(fd);
    return "";
  }
  const std::string req = "GET " + path + " HTTP/1.0\r\n\r\n";
  if (::send(fd, req.data(), req.size(), MSG_NOSIGNAL) !=
      static_cast<ssize_t>(req.size())) {
    ::close(fd);
    return "";
  }
  std::string out;
  char buf[4096];
  ssize_t n;
  while ((n = ::recv(fd, buf, sizeof buf, 0)) > 0) {
    out.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);
  return out;
}

TEST(Obs, AdminServerServesMetricsOverHttp) {
  obs::MetricsRegistry reg;
  reg.counter("test_admin_total", "Admin test counter.").add(7);
  obs::AdminServer admin(obs::AdminServer::Config(), &reg);
  ASSERT_TRUE(admin.start().ok());
  ASSERT_NE(admin.port(), 0);

  const std::string metrics = admin_get(admin.port(), "/metrics");
  EXPECT_NE(metrics.find("HTTP/1.0 200 OK"), std::string::npos);
  EXPECT_NE(metrics.find("Content-Type: text/plain; version=0.0.4"),
            std::string::npos);
  EXPECT_NE(metrics.find("# TYPE test_admin_total counter"),
            std::string::npos);
  EXPECT_NE(metrics.find("test_admin_total 7"), std::string::npos);

  const std::string json = admin_get(admin.port(), "/metrics.json");
  EXPECT_NE(json.find("HTTP/1.0 200 OK"), std::string::npos);
  EXPECT_NE(json.find("\"test_admin_total\":7"), std::string::npos);
  const std::size_t body_at = json.find("\r\n\r\n");
  ASSERT_NE(body_at, std::string::npos);
  EXPECT_EQ(json[body_at + 4], '{');

  const std::string health = admin_get(admin.port(), "/healthz");
  EXPECT_NE(health.find("HTTP/1.0 200 OK"), std::string::npos);
  EXPECT_NE(health.find("ok"), std::string::npos);

  const std::string missing = admin_get(admin.port(), "/nope");
  EXPECT_NE(missing.find("HTTP/1.0 404 Not Found"), std::string::npos);

  // Concurrent scrapes: one request per connection, close-after-response.
  std::vector<std::thread> scrapers;
  std::atomic<int> ok_count{0};
  for (int i = 0; i < 8; ++i) {
    scrapers.emplace_back([&admin, &ok_count] {
      const std::string r = admin_get(admin.port(), "/metrics");
      if (r.find("test_admin_total 7") != std::string::npos) {
        ok_count.fetch_add(1);
      }
    });
  }
  for (auto& th : scrapers) th.join();
  EXPECT_EQ(ok_count.load(), 8);

  admin.stop();
}

TEST(Obs, AdminServerRejectsBusyPort) {
  obs::MetricsRegistry reg;
  obs::AdminServer first(obs::AdminServer::Config(), &reg);
  ASSERT_TRUE(first.start().ok());
  obs::AdminServer::Config clash;
  clash.endpoint = {"127.0.0.1", first.port()};
  obs::AdminServer second(clash, &reg);
  EXPECT_FALSE(second.start().ok());
  first.stop();
}

}  // namespace
}  // namespace protoobf
