// Artifact persistence tests: save/load round trips and wire compatibility
// between a generating peer and a loading peer.
#include <gtest/gtest.h>

#include "protocols/http.hpp"
#include "protocols/modbus.hpp"
#include "runtime/persist.hpp"

namespace protoobf {
namespace {

TEST(Persist, ArtifactHeaderAndShape) {
  auto g = Framework::load_spec(modbus::request_spec()).value();
  ObfuscationConfig cfg;
  cfg.per_node = 1;
  cfg.seed = 8;
  auto protocol = Framework::generate(g, cfg).value();
  const std::string artifact = save_artifact(protocol);
  EXPECT_EQ(artifact.rfind("protoobf-artifact v1", 0), 0u);
  EXPECT_NE(artifact.find("protocol ModbusRequest"), std::string::npos);
  EXPECT_NE(artifact.find("graph original"), std::string::npos);
  EXPECT_NE(artifact.find("graph wire"), std::string::npos);
  EXPECT_NE(artifact.find("journal "), std::string::npos);
}

TEST(Persist, SaveLoadPreservesStructure) {
  auto g = Framework::load_spec(http::request_spec()).value();
  ObfuscationConfig cfg;
  cfg.per_node = 2;
  cfg.seed = 77;
  auto saved = Framework::generate(g, cfg).value();
  auto loaded = load_artifact(save_artifact(saved));
  ASSERT_TRUE(loaded.ok()) << loaded.error().message;
  EXPECT_EQ(loaded->journal().size(), saved.journal().size());
  EXPECT_EQ(loaded->wire_graph().size(), saved.wire_graph().size());
  EXPECT_EQ(loaded->original().size(), saved.original().size());
  EXPECT_EQ(loaded->stats().applied, saved.stats().applied);
}

class PersistInterop : public ::testing::TestWithParam<int> {};

TEST_P(PersistInterop, LoadedPeerDecodesGeneratedTraffic) {
  auto g = Framework::load_spec(modbus::request_spec()).value();
  ObfuscationConfig cfg;
  cfg.per_node = GetParam();
  cfg.seed = 3141;
  auto generator_peer = Framework::generate(g, cfg).value();
  auto loaded = load_artifact(save_artifact(generator_peer));
  ASSERT_TRUE(loaded.ok()) << loaded.error().message;

  Rng rng(11);
  for (int i = 0; i < 10; ++i) {
    Message msg = modbus::random_request(g, rng);
    auto wire = generator_peer.serialize(msg.root(), 500u + i);
    ASSERT_TRUE(wire.ok());
    auto received = loaded->parse(*wire);
    ASSERT_TRUE(received.ok()) << received.error().message;

    // And the loaded peer produces byte-identical traffic for equal seeds.
    auto wire2 = loaded->serialize(msg.root(), 500u + i);
    ASSERT_TRUE(wire2.ok());
    EXPECT_EQ(to_hex(*wire), to_hex(*wire2));
  }
}

INSTANTIATE_TEST_SUITE_P(Levels, PersistInterop, ::testing::Values(0, 1, 3));

TEST(Persist, RejectsGarbage) {
  EXPECT_FALSE(load_artifact("").ok());
  EXPECT_FALSE(load_artifact("not an artifact").ok());
  EXPECT_FALSE(load_artifact("protoobf-artifact v1\nbogus").ok());
}

TEST(Persist, RejectsTruncatedArtifact) {
  auto g = Framework::load_spec(modbus::request_spec()).value();
  ObfuscationConfig cfg;
  cfg.per_node = 1;
  auto protocol = Framework::generate(g, cfg).value();
  std::string artifact = save_artifact(protocol);
  artifact.resize(artifact.size() / 2);
  EXPECT_FALSE(load_artifact(artifact).ok());
}

TEST(Persist, RejectsTamperedGraph) {
  auto g = Framework::load_spec(modbus::request_spec()).value();
  ObfuscationConfig cfg;
  cfg.per_node = 1;
  cfg.seed = 6;
  auto protocol = Framework::generate(g, cfg).value();
  std::string artifact = save_artifact(protocol);
  // Flip a fixed size to zero: validation must catch the inconsistency.
  const auto pos = artifact.find(" 2 ");
  ASSERT_NE(pos, std::string::npos);
  artifact.replace(pos, 3, " 0 ");
  const auto result = load_artifact(artifact);
  // Either a parse error or a validation error, never a usable protocol.
  EXPECT_FALSE(result.ok());
}

}  // namespace
}  // namespace protoobf
