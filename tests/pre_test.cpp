// PRE substrate tests: alignment, clustering, field inference, DPI.
#include <gtest/gtest.h>

#include "pre/alignment.hpp"
#include "pre/clustering.hpp"
#include "pre/dpi.hpp"
#include "pre/field_inference.hpp"
#include "pre/statistics.hpp"
#include "util/rng.hpp"

namespace protoobf::pre {
namespace {

TEST(Alignment, IdenticalStringsScoreOne) {
  const Bytes a = to_bytes("abcdef");
  EXPECT_DOUBLE_EQ(similarity(a, a), 1.0);
}

TEST(Alignment, DisjointStringsScoreLow) {
  EXPECT_LT(similarity(to_bytes("aaaa"), to_bytes("zzzz")), 0.5);
}

TEST(Alignment, GapsAreFoundByTraceback) {
  const Alignment al = align(to_bytes("abcdef"), to_bytes("abdef"));
  ASSERT_EQ(al.a.size(), al.b.size());
  int gaps = 0;
  for (std::size_t i = 0; i < al.b.size(); ++i) {
    if (al.b[i] < 0) ++gaps;
  }
  EXPECT_EQ(gaps, 1);  // 'c' deletion
}

TEST(Alignment, SimilarityIsSymmetricEnough) {
  const Bytes a = to_bytes("GET /index HTTP/1.1");
  const Bytes b = to_bytes("GET /query HTTP/1.1");
  EXPECT_NEAR(similarity(a, b), similarity(b, a), 1e-9);
  EXPECT_GT(similarity(a, b), 0.7);  // same message type aligns well
}

TEST(Alignment, EmptyInputs) {
  EXPECT_DOUBLE_EQ(similarity(Bytes{}, Bytes{}), 1.0);
  EXPECT_LT(similarity(Bytes{}, to_bytes("abc")), 0.5);
}

TEST(Clustering, SeparatesObviouslyDifferentTypes) {
  std::vector<Bytes> messages = {
      to_bytes("GET /a HTTP/1.1"),  to_bytes("GET /b HTTP/1.1"),
      to_bytes("GET /cc HTTP/1.1"), to_bytes("\x01\x02\x03\x04\x05\x06"),
      to_bytes("\x01\x02\x03\x04\x05\x07"),
  };
  const auto clusters = cluster_messages(messages, 0.35);
  EXPECT_EQ(clusters.size(), 2u);
  const std::vector<int> labels = {0, 0, 0, 1, 1};
  const auto quality = score_clustering(clusters, labels);
  EXPECT_DOUBLE_EQ(quality.purity, 1.0);
  EXPECT_EQ(quality.true_types, 2u);
}

TEST(Clustering, ThresholdZeroKeepsSingletons) {
  std::vector<Bytes> messages = {to_bytes("aa"), to_bytes("bb"),
                                 to_bytes("cc")};
  EXPECT_EQ(cluster_messages(messages, -1.0).size(), 3u);
}

TEST(Clustering, EmptyTraceYieldsNoClusters) {
  EXPECT_TRUE(cluster_messages({}, 0.3).empty());
}

TEST(FieldInference, FindsConstantVariableBoundaries) {
  // 4-byte constant header, 2 variable bytes, constant trailer.
  std::vector<Bytes> cluster = {
      to_bytes("HDR:ab!"),
      to_bytes("HDR:cd!"),
      to_bytes("HDR:ef!"),
  };
  const InferredFormat format = infer_format(cluster);
  ASSERT_EQ(format.constant.size(), 7u);
  EXPECT_TRUE(format.constant[0]);
  EXPECT_FALSE(format.constant[4]);
  EXPECT_TRUE(format.constant[6]);
  // Boundaries at 0 (start), 4 (const->var) and 6 (var->const).
  EXPECT_EQ(format.boundaries, (std::vector<std::size_t>{0, 4, 6}));
}

TEST(FieldInference, SingleMessageIsAllConstant) {
  const InferredFormat format = infer_format({to_bytes("xyz")});
  EXPECT_EQ(format.boundaries, (std::vector<std::size_t>{0}));
  EXPECT_TRUE(format.constant[0] && format.constant[1] && format.constant[2]);
}

TEST(FieldInference, BoundaryScoring) {
  const BoundaryScore s =
      score_boundaries({0, 4, 6}, {0, 4, 7}, /*tolerance=*/1);
  EXPECT_DOUBLE_EQ(s.precision, 1.0);  // 6 is within 1 of 7
  EXPECT_DOUBLE_EQ(s.recall, 1.0);
  EXPECT_DOUBLE_EQ(s.f1, 1.0);
  const BoundaryScore hard =
      score_boundaries({0, 2}, {0, 8, 12}, /*tolerance=*/1);
  EXPECT_NEAR(hard.precision, 0.5, 1e-9);
  EXPECT_NEAR(hard.recall, 1.0 / 3.0, 1e-9);
}

// --- DPI ----------------------------------------------------------------------

TEST(Dpi, DetectsPlainModbusRequest) {
  // Read Holding Registers, the simplymodbus.ca reference frame.
  const Bytes frame = from_hex("0001000000061103006b0003").value();
  EXPECT_TRUE(looks_like_modbus(frame));
  EXPECT_EQ(classify(frame), Protocol::ModbusTcp);
}

TEST(Dpi, DetectsModbusResponseAndException) {
  const Bytes response = from_hex("000100000009110306ae415652434040").value();
  // (length 9: unit+fn+bytecount+6 data bytes)
  EXPECT_FALSE(looks_like_modbus(response));  // deliberately wrong bytecount
  const Bytes good = from_hex("000100000009110306ae4156524340").value();
  EXPECT_TRUE(looks_like_modbus(good));
  const Bytes exception = from_hex("000100000003118302").value();
  EXPECT_TRUE(looks_like_modbus(exception));
}

TEST(Dpi, RejectsCorruptModbus) {
  Bytes frame = from_hex("0001000000061103006b0003").value();
  frame[2] = 0x11;  // protocol id != 0
  EXPECT_FALSE(looks_like_modbus(frame));
  frame = from_hex("0001000000991103006b0003").value();  // bad length
  EXPECT_FALSE(looks_like_modbus(frame));
  EXPECT_FALSE(looks_like_modbus(Bytes{1, 2, 3}));  // too short
}

TEST(Dpi, DetectsHttpRequest) {
  const Bytes req = to_bytes(
      "GET /index.html HTTP/1.1\r\nHost: example.com\r\n\r\n");
  EXPECT_TRUE(looks_like_http(req));
  EXPECT_EQ(classify(req), Protocol::Http);
  const Bytes bare = to_bytes("POST /x HTTP/1.0\r\n\r\n");
  EXPECT_TRUE(looks_like_http(bare));
}

TEST(Dpi, RejectsNonHttp) {
  EXPECT_FALSE(looks_like_http(to_bytes("HELO example.com\r\n")));
  EXPECT_FALSE(looks_like_http(to_bytes("GET without-version\r\n")));
  EXPECT_FALSE(looks_like_http(to_bytes("GARBAGE")));
  EXPECT_EQ(classify(to_bytes("random noise")), Protocol::Unknown);
}

TEST(Dpi, RandomBytesAreUnknown) {
  Bytes noise(64);
  for (std::size_t i = 0; i < noise.size(); ++i) {
    noise[i] = static_cast<Byte>(i * 37 + 11);
  }
  EXPECT_EQ(classify(noise), Protocol::Unknown);
}

// --- statistical fingerprinting ------------------------------------------------

TEST(Statistics, EntropyBounds) {
  EXPECT_DOUBLE_EQ(shannon_entropy(Bytes{}), 0.0);
  EXPECT_DOUBLE_EQ(shannon_entropy(Bytes(100, 0x41)), 0.0);  // constant
  Bytes all;
  for (int v = 0; v < 256; ++v) all.push_back(static_cast<Byte>(v));
  EXPECT_NEAR(shannon_entropy(all), 8.0, 1e-9);  // perfectly uniform
}

TEST(Statistics, PrintableRatio) {
  EXPECT_DOUBLE_EQ(printable_ratio(to_bytes("hello")), 1.0);
  EXPECT_DOUBLE_EQ(printable_ratio(Bytes{0x00, 0x01}), 0.0);
  EXPECT_NEAR(printable_ratio(Bytes{'a', 0x00}), 0.5, 1e-9);
}

TEST(Statistics, ChiSquareDistinguishesUniformFromSkewed) {
  protoobf::Rng rng(9);
  const Bytes uniform = rng.bytes(4096);
  const Bytes skewed(4096, 0x42);
  EXPECT_LT(chi_square_uniform(uniform), chi_square_uniform(skewed));
}

TEST(Statistics, ClassifiesTrafficKinds) {
  EXPECT_EQ(classify_profile(profile(to_bytes(
                "GET /index.html HTTP/1.1\r\nHost: example.com\r\n\r\n"))),
            TrafficClass::TextLike);
  const Bytes modbus = from_hex("0001000000061103006b0003").value();
  EXPECT_EQ(classify_profile(profile(modbus)),
            TrafficClass::StructuredBinary);
  protoobf::Rng rng(5);
  EXPECT_EQ(classify_profile(profile(rng.bytes(512))),
            TrafficClass::RandomLike);
}

}  // namespace
}  // namespace protoobf::pre
