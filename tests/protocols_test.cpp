// Protocol definition tests: the Modbus/HTTP specs expose exactly the graph
// features the paper lists, the typed builders produce valid messages, and
// the random workload generators stay serializable across many seeds.
#include <gtest/gtest.h>

#include "protocols/http.hpp"
#include "protocols/modbus.hpp"

namespace protoobf {
namespace {

TEST(ModbusSpec, HasTheFeaturesThePaperLists) {
  // "Modbus contains a Tabular field, a Length Boundary and a Counter
  // Boundary" (§VII).
  auto g = Framework::load_spec(modbus::request_spec());
  ASSERT_TRUE(g.ok()) << g.error().message;
  bool has_tabular = false, has_length = false, has_counter = false;
  for (NodeId id : g->dfs_order()) {
    const Node& n = g->node(id);
    has_tabular |= n.type == NodeType::Tabular;
    has_length |= n.boundary == BoundaryKind::Length;
    has_counter |= n.boundary == BoundaryKind::Counter;
  }
  EXPECT_TRUE(has_tabular);
  EXPECT_TRUE(has_length);
  EXPECT_TRUE(has_counter);
}

TEST(HttpSpec, HasTheFeaturesThePaperLists) {
  // "HTTP contains an Optional field, a Repetitive field, as well as
  // Delimited Boundary" (§VII).
  auto g = Framework::load_spec(http::request_spec());
  ASSERT_TRUE(g.ok()) << g.error().message;
  bool has_optional = false, has_repetition = false, has_delimited = false;
  for (NodeId id : g->dfs_order()) {
    const Node& n = g->node(id);
    has_optional |= n.type == NodeType::Optional;
    has_repetition |= n.type == NodeType::Repetition;
    has_delimited |= n.boundary == BoundaryKind::Delimited;
  }
  EXPECT_TRUE(has_optional);
  EXPECT_TRUE(has_repetition);
  EXPECT_TRUE(has_delimited);
  // ~10 nodes, matching the paper's ~10 applied transformations at o=1.
  EXPECT_EQ(g->size(), 10u);
}

TEST(ModbusBuilders, WriteRegistersDerivesCountsAndLengths) {
  auto g = Framework::load_spec(modbus::request_spec()).value();
  ObfuscationConfig cfg;
  cfg.per_node = 0;
  auto p = Framework::generate(g, cfg).value();
  const std::uint16_t values[] = {0x000a, 0x0102};
  Message msg = modbus::make_write_registers(g, 1, 0x11, 1, values);
  auto wire = p.serialize(msg.root(), 1);
  ASSERT_TRUE(wire.ok()) << wire.error().message;
  // tx=0001 proto=0000 len=000b unit=11 fn=10 addr=0001 qty=0002 bc=04
  // regs=000a 0102
  EXPECT_EQ(to_hex(*wire), "00010000000b11100001000204000a0102");
}

TEST(ModbusBuilders, KnownWriteRegisterBytes) {
  auto g = Framework::load_spec(modbus::request_spec()).value();
  ObfuscationConfig cfg;
  cfg.per_node = 0;
  auto p = Framework::generate(g, cfg).value();
  Message msg = modbus::make_write_register(g, 0x0001, 0x11, 0x0001, 0x0003);
  auto wire = p.serialize(msg.root(), 1);
  ASSERT_TRUE(wire.ok());
  EXPECT_EQ(to_hex(*wire), "000100000006110600010003");
}

TEST(ModbusBuilders, ResponseBytes) {
  auto g = Framework::load_spec(modbus::response_spec()).value();
  ObfuscationConfig cfg;
  cfg.per_node = 0;
  auto p = Framework::generate(g, cfg).value();
  const std::uint16_t regs[] = {0xae41, 0x5652, 0x4340};
  Message msg = modbus::make_read_holding_response(g, 0x0001, 0x11, regs);
  auto wire = p.serialize(msg.root(), 1);
  ASSERT_TRUE(wire.ok());
  EXPECT_EQ(to_hex(*wire), "000100000009110306ae4156524340");
}

TEST(HttpBuilders, PostCarriesBody) {
  auto g = Framework::load_spec(http::request_spec()).value();
  ObfuscationConfig cfg;
  cfg.per_node = 0;
  auto p = Framework::generate(g, cfg).value();
  Message msg = http::make_post(g, "/submit", {{"Host", "h"}}, "a=1&b=2");
  auto wire = p.serialize(msg.root(), 1);
  ASSERT_TRUE(wire.ok());
  EXPECT_EQ(to_text(*wire),
            "POST /submit HTTP/1.1\r\nHost: h\r\n\r\na=1&b=2");
}

class RandomWorkload : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RandomWorkload, AllGeneratorsProduceSerializableMessages) {
  auto req = Framework::load_spec(modbus::request_spec()).value();
  auto resp = Framework::load_spec(modbus::response_spec()).value();
  auto web = Framework::load_spec(http::request_spec()).value();
  ObfuscationConfig cfg;
  cfg.per_node = 0;
  auto p_req = Framework::generate(req, cfg).value();
  auto p_resp = Framework::generate(resp, cfg).value();
  auto p_web = Framework::generate(web, cfg).value();

  Rng rng(GetParam());
  for (int i = 0; i < 20; ++i) {
    Message a = modbus::random_request(req, rng);
    EXPECT_TRUE(p_req.serialize(a.root(), i).ok());
    Message b = modbus::random_response(resp, rng);
    EXPECT_TRUE(p_resp.serialize(b.root(), i).ok());
    Message c = http::random_request(web, rng);
    EXPECT_TRUE(p_web.serialize(c.root(), i).ok());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomWorkload,
                         ::testing::Values(1, 7, 1234, 999983));

}  // namespace
}  // namespace protoobf
