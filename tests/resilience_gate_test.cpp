// Online DPI-resilience gate (ISSUE 6 tentpole, part 2).
//
// bench/resilience_pre.cpp measures how the automated PRE toolchain
// degrades with obfuscation level — but as a bench, nothing fails when a
// regression quietly makes obfuscated traffic recognizable again. This
// test turns the claim into a gate, and upgrades the evidence from
// serializer output to *real wire bytes*: a TrafficCapture taps the client
// Connection of a loopback echo conversation, the captured inbound stream
// is de-framed the way any on-path observer would have to, and all four
// pre instruments run over the recovered payloads.
//
// The gate, per arm:
//   plain Modbus (per_node = 0)  — the DPI engine must recognize the
//     traffic, alignment must see near-identical same-type messages, and
//     field inference must recover a usable fraction of true boundaries
//     (the §VII-D "under half an hour" side of the anecdote);
//   obfuscated Modbus (per_node = 2) — the same instruments over the same
//     logical messages must come up empty: zero DPI hits, same-type
//     similarity indistinguishable from noise, boundary F1 collapsed (the
//     "nothing relevant after two hours" side).
//
// Thresholds carry wide margins around measured values (see the comment at
// each constant) so the gate trips on regressions, not on noise.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <functional>
#include <map>
#include <memory>
#include <thread>
#include <vector>

#include "core/protoobf.hpp"
#include "net/capture.hpp"
#include "net/connector.hpp"
#include "net/server.hpp"
#include "pre/alignment.hpp"
#include "pre/clustering.hpp"
#include "pre/dpi.hpp"
#include "pre/field_inference.hpp"
#include "protocols/modbus.hpp"
#include "session/protocol_cache.hpp"
#include "util/rng.hpp"

namespace protoobf {
namespace {

using namespace protoobf::net;

constexpr std::size_t kMessages = 32;

bool wait_for(const std::function<bool()>& cond,
              std::chrono::milliseconds timeout =
                  std::chrono::milliseconds(10000)) {
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  while (!cond()) {
    if (std::chrono::steady_clock::now() >= deadline) return false;
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  return true;
}

/// What the instruments digest: one captured echo payload per message,
/// with the ground truth only the framework can know.
struct CapturedTrace {
  std::vector<Bytes> wires;
  std::vector<int> labels;  // true type = Modbus function code
  std::vector<std::vector<std::size_t>> truth_boundaries;
};

/// Runs a loopback echo conversation of kMessages random Modbus requests
/// over `protocol`, tapping the client connection, and returns the
/// de-framed inbound capture. The echo seed is deterministic (messages_in:
/// 1, 2, 3, ...), so ground-truth spans come from re-serializing locally
/// with the same seeds — and byte identity between that and the capture is
/// asserted, proving the instruments see real socket traffic.
CapturedTrace capture_echo_trace(
    std::shared_ptr<const ObfuscatedProtocol> protocol, std::uint64_t rng_seed) {
  const Graph& g = protocol->original();

  auto server = std::make_unique<Server>(
      protocol, length_prefix_framer_factory(), Server::Config{});
  server->on_accept([](Connection& conn) {
    conn.on_message([](Connection& c, Expected<InstPtr> msg) {
      if (!msg.ok()) return;
      (void)c.send(**msg, c.stats().messages_in);
    });
  });
  EXPECT_TRUE(server->start().ok());

  Rng rng(rng_seed);
  std::vector<Message> sent;
  for (std::size_t i = 0; i < kMessages; ++i) {
    sent.push_back(modbus::random_request(g, rng));
    EXPECT_TRUE(protocol->canonicalize(sent.back().root()).ok());
  }

  TrafficCapture capture;
  Connection::Config conn_cfg;
  conn_cfg.capture = &capture;
  EventLoop loop;
  auto conn = Connector::dial(loop, {"127.0.0.1", server->port()}, protocol,
                              std::make_unique<LengthPrefixFramer>(),
                              conn_cfg);
  EXPECT_TRUE(conn.ok()) << conn.error().message;

  std::atomic<std::size_t> echoed{0};
  (*conn)->on_message([&](Connection&, Expected<InstPtr> msg) {
    EXPECT_TRUE(msg.ok()) << msg.error().message;
    echoed.fetch_add(1);
  });
  EXPECT_TRUE((*conn)->open().ok());

  std::thread client_thread([&] { loop.run(); });
  Connection* raw = conn->get();
  for (std::size_t i = 0; i < kMessages; ++i) {
    loop.post([raw, &sent, i] {
      EXPECT_TRUE(raw->send(sent[i].root(), 500 + i).ok());
    });
  }
  EXPECT_TRUE(wait_for([&] { return echoed.load() == kMessages; }))
      << "echoed " << echoed.load() << "/" << kMessages;
  loop.post([raw] { raw->close(); });
  loop.stop();
  client_thread.join();
  server->stop();

  // De-frame the inbound capture the way an observer would: a fresh framer
  // over the concatenated read() slices.
  LengthPrefixFramer deframer;
  auto payloads = capture.deframe_in(deframer);
  EXPECT_TRUE(payloads.ok()) << payloads.error().message;

  CapturedTrace trace;
  if (!payloads.ok()) return trace;
  EXPECT_EQ(payloads->size(), kMessages);

  for (std::size_t i = 0; i < payloads->size(); ++i) {
    // Ground truth: the echo serialized message i with seed i + 1.
    std::vector<FieldSpan> spans;
    auto expected = protocol->serialize(sent[i].root(), i + 1, &spans);
    EXPECT_TRUE(expected.ok()) << expected.error().message;
    EXPECT_EQ((*payloads)[i], *expected)
        << "captured echo payload " << i
        << " differs from the local re-serialization";

    const Inst* fn = ast::find_path(g, sent[i].root(), "adu.tail.fn");
    trace.labels.push_back(
        fn != nullptr && !fn->value.empty() ? fn->value[0] : 0);
    std::vector<std::size_t> bounds;
    for (const FieldSpan& span : spans) bounds.push_back(span.offset);
    trace.truth_boundaries.push_back(std::move(bounds));
    trace.wires.push_back(std::move((*payloads)[i]));
  }
  return trace;
}

/// Instrument summary over one captured trace (the numbers the gate is
/// expressed in).
struct Assessment {
  double dpi_rate = 0;         // fraction classified as a known protocol
  double type_similarity = 0;  // avg alignment similarity within true types
  pre::ClusterQuality clusters;
  double boundary_f1 = 0;      // size-weighted, best clustering threshold
};

Assessment assess(const CapturedTrace& trace) {
  Assessment a;
  if (trace.wires.empty()) return a;

  int dpi_hits = 0;
  for (const Bytes& wire : trace.wires) {
    if (pre::classify(wire) != pre::Protocol::Unknown) ++dpi_hits;
  }
  a.dpi_rate = static_cast<double>(dpi_hits) /
               static_cast<double>(trace.wires.size());

  double sim_total = 0;
  int sim_pairs = 0;
  for (std::size_t i = 0; i < trace.wires.size(); ++i) {
    for (std::size_t j = i + 1; j < trace.wires.size() && sim_pairs < 200;
         ++j) {
      if (trace.labels[i] != trace.labels[j]) continue;
      sim_total += pre::similarity(trace.wires[i], trace.wires[j]);
      ++sim_pairs;
    }
  }
  a.type_similarity = sim_pairs == 0 ? 0.0 : sim_total / sim_pairs;

  // Give the attacker the analyst's advantage: sweep the clustering
  // threshold and keep the best-balanced result (bench methodology).
  std::vector<std::vector<std::size_t>> clusters;
  double best_score = -1.0;
  for (double threshold : {0.25, 0.35, 0.45, 0.55, 0.65}) {
    auto candidate = pre::cluster_messages(trace.wires, threshold);
    const auto quality = pre::score_clustering(candidate, trace.labels);
    const double balance =
        static_cast<double>(std::min(quality.clusters, quality.true_types)) /
        static_cast<double>(std::max<std::size_t>(
            1, std::max(quality.clusters, quality.true_types)));
    const double score = quality.purity * balance;
    if (score > best_score) {
      best_score = score;
      clusters = std::move(candidate);
    }
  }
  a.clusters = pre::score_clustering(clusters, trace.labels);

  double f1_sum = 0;
  std::size_t scored = 0;
  for (const auto& cluster : clusters) {
    std::vector<Bytes> members;
    for (std::size_t idx : cluster) members.push_back(trace.wires[idx]);
    const pre::InferredFormat format = pre::infer_format(members);
    const auto score = pre::score_boundaries(
        format.boundaries, trace.truth_boundaries[cluster.front()], 1);
    f1_sum += score.f1 * static_cast<double>(cluster.size());
    scored += cluster.size();
  }
  a.boundary_f1 = scored == 0 ? 0.0 : f1_sum / static_cast<double>(scored);
  return a;
}

std::shared_ptr<const ObfuscatedProtocol> compile_modbus(int per_node) {
  ObfuscationConfig cfg;
  cfg.seed = 90125;
  cfg.per_node = per_node;
  ProtocolCache cache;
  auto entry = cache.get_or_compile(modbus::request_spec(), cfg);
  EXPECT_TRUE(entry.ok()) << entry.error().message;
  return entry.ok() ? *entry : nullptr;
}

TEST(ResilienceGate, PlainModbusOverLoopbackIsFullyAnalyzable) {
  auto protocol = compile_modbus(/*per_node=*/0);
  ASSERT_NE(protocol, nullptr);
  const CapturedTrace trace = capture_echo_trace(protocol, 0xB0B);
  ASSERT_EQ(trace.wires.size(), kMessages);
  const Assessment a = assess(trace);

  ::testing::Test::RecordProperty("dpi_rate", std::to_string(a.dpi_rate));
  std::printf("[plain]      dpi=%.2f sim=%.2f purity=%.2f f1=%.2f\n",
              a.dpi_rate, a.type_similarity, a.clusters.purity,
              a.boundary_f1);

  // Identity compilation is the control arm: the instruments must work.
  // Measured (deterministic trace): dpi 1.00, sim 0.65, purity 1.00,
  // F1 0.70 — thresholds sit roughly midway to the obfuscated arm's
  // values so either side drifting toward the other trips the gate.
  EXPECT_GE(a.dpi_rate, 0.99) << "DPI no longer recognizes plain Modbus";
  EXPECT_GE(a.type_similarity, 0.55);
  EXPECT_GE(a.clusters.purity, 0.90);
  EXPECT_GE(a.boundary_f1, 0.60);
}

TEST(ResilienceGate, ObfuscatedModbusOverLoopbackDefeatsTheInstruments) {
  auto protocol = compile_modbus(/*per_node=*/2);
  ASSERT_NE(protocol, nullptr);
  const CapturedTrace trace = capture_echo_trace(protocol, 0xB0B);
  ASSERT_EQ(trace.wires.size(), kMessages);
  const Assessment a = assess(trace);

  std::printf("[obfuscated] dpi=%.2f sim=%.2f purity=%.2f f1=%.2f\n",
              a.dpi_rate, a.type_similarity, a.clusters.purity,
              a.boundary_f1);

  // The gate. Measured at per_node=2 (deterministic trace): dpi 0.00,
  // sim 0.36, F1 0.43 — against the plain arm's 1.00 / 0.65 / 0.70. DPI
  // is the hard line (any hit is a leak); the statistical instruments get
  // a margin above their measured values but below the plain arm's floor.
  EXPECT_EQ(a.dpi_rate, 0.0)
      << "DPI signatures match obfuscated wire traffic";
  EXPECT_LT(a.type_similarity, 0.50)
      << "same-type obfuscated messages align too well";
  EXPECT_LT(a.boundary_f1, 0.55)
      << "field inference recovers obfuscated boundaries";
}

}  // namespace
}  // namespace protoobf
