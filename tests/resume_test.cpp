// Resumable prefix parse (ParseResume): a Truncated parse_wire_prefix
// suspends its partial state and the next attempt on the same grown buffer
// front continues from the truncation point instead of byte 0.
//
// Load-bearing properties (ISSUE 5 acceptance):
//   * byte-identity — a parse assembled from resumed attempts equals the
//     one-shot parse of the full wire image, for every chunking, including
//     delimiter-bounded and stop-marker wire formats and obfuscated specs;
//   * amortized O(1) work per delivered byte — delimiter scans never
//     re-read rejected bytes (pinned through ParseResume::Stats), where
//     the restart-from-zero baseline rescans quadratically;
//   * checkpoint hygiene — consumed on success, dropped on malformed
//     input, auto-invalidated when the buffer front shrinks.
#include <gtest/gtest.h>

#include "core/protoobf.hpp"
#include "runtime/parse.hpp"
#include "session/protocol_cache.hpp"
#include "util/rng.hpp"

namespace protoobf {
namespace {

// Delimiter-bounded frame format: no length field anywhere, so a streaming
// receiver can only discover the boundary by scanning.
constexpr std::string_view kDelimSpec = R"(
protocol DFrame
frame: seq end {
  ftag: terminal delimited("|") ascii
  fbody: terminal delimited("\r\n") ascii
}
)";

// Stop-marker repetition on the open spine: elements are themselves
// delimiter-bounded, the list ends with a marker the trickle reveals late.
constexpr std::string_view kRepSpec = R"(
protocol DRep
frame: seq end {
  fbody: terminal delimited("|") ascii
  fopts: repeat delimited("\r\n") {
    fopt: terminal delimited(";") ascii
  }
}
)";

ObfuscationConfig config_of(std::uint64_t seed, int per_node) {
  ObfuscationConfig cfg;
  cfg.seed = seed;
  cfg.per_node = per_node;
  return cfg;
}

std::shared_ptr<const ObfuscatedProtocol> compile(std::string_view spec,
                                                  std::uint64_t seed,
                                                  int per_node) {
  ProtocolCache cache;
  auto entry = cache.get_or_compile(spec, config_of(seed, per_node));
  EXPECT_TRUE(entry.ok()) << entry.error().message;
  return *entry;
}

/// One resumable prefix parse of `wire` delivered in `step`-byte slices
/// (the last slice may be shorter). Returns the final tree and checks the
/// intermediate taxonomy: every short attempt is Truncated, never an error.
Expected<InstPtr> trickle_parse(const ObfuscatedProtocol& protocol,
                                BytesView wire, std::size_t step,
                                ParseResume& resume, InstPool& nodes,
                                std::size_t* consumed) {
  for (std::size_t have = std::min(step, wire.size());;
       have = std::min(have + step, wire.size())) {
    auto tree = protocol.parse_prefix(wire.first(have), consumed, nullptr,
                                      nullptr, &nodes, nullptr, &resume);
    if (tree.ok()) return tree;
    EXPECT_TRUE(tree.error().truncated())
        << "prefix " << have << "/" << wire.size()
        << " reported malformed: " << tree.error().message;
    EXPECT_GE(tree.error().need, 1u);
    if (have == wire.size()) return tree;  // full wire failed: surface it
  }
}

TEST(ParseResume, ResumedTrickleEqualsOneShotOnDelimiterSpec) {
  auto protocol = compile(kDelimSpec, 1, 0);  // identity wire format
  auto g = Framework::load_spec(kDelimSpec).value();
  Message msg(g);
  msg.set_text("ftag", "42");
  msg.set_text("fbody", "a delimiter-bounded body with | inside? no: pipes "
                        "end ftag, so none here");
  const Bytes wire = protocol->serialize(msg.root(), 3).value();
  auto oneshot = protocol->parse(wire);
  ASSERT_TRUE(oneshot.ok()) << oneshot.error().message;

  for (const std::size_t step : {1u, 2u, 3u, 7u}) {
    ParseResume resume;
    InstPool nodes;
    std::size_t consumed = 0;
    auto resumed =
        trickle_parse(*protocol, wire, step, resume, nodes, &consumed);
    ASSERT_TRUE(resumed.ok()) << resumed.error().message;
    EXPECT_EQ(consumed, wire.size());
    EXPECT_TRUE(ast::equal(**resumed, **oneshot)) << "step " << step;
    EXPECT_FALSE(resume.active()) << "checkpoint must be consumed";
    EXPECT_GT(resume.stats().resumed, 0u) << "trickle must actually resume";
  }
}

TEST(ParseResume, DelimiterScanNeverRereadsRejectedBytes) {
  auto protocol = compile(kDelimSpec, 1, 0);
  auto g = Framework::load_spec(kDelimSpec).value();
  Message msg(g);
  msg.set_text("ftag", "7");
  msg.set_text("fbody", std::string(512, 'x'));  // one long scanned region
  const Bytes wire = protocol->serialize(msg.root(), 5).value();

  // Resumable: scanned bytes stay O(wire) under 1-byte delivery.
  ParseResume resume;
  InstPool nodes;
  std::size_t consumed = 0;
  auto tree = trickle_parse(*protocol, wire, 1, resume, nodes, &consumed);
  ASSERT_TRUE(tree.ok()) << tree.error().message;
  // Every byte is examined once per scanned region it belongs to, plus a
  // (delimiter-1)-byte overlap per retry: comfortably under 4x the wire.
  EXPECT_LE(resume.stats().scanned_bytes, 4 * wire.size())
      << "resumable scan degraded toward O(n^2)";

  // Restart-from-zero baseline (checkpointing disabled, same accounting):
  // the same delivery rescans the front on every attempt — quadratic.
  ParseResume baseline;
  baseline.set_enabled(false);
  InstPool baseline_nodes;
  auto base_tree =
      trickle_parse(*protocol, wire, 1, baseline, baseline_nodes, &consumed);
  ASSERT_TRUE(base_tree.ok());
  EXPECT_GT(baseline.stats().scanned_bytes, 16 * wire.size())
      << "baseline unexpectedly cheap: the regression this guards is gone?";
  EXPECT_EQ(baseline.stats().resumed, 0u);
  EXPECT_TRUE(ast::equal(**tree, **base_tree));
}

TEST(ParseResume, StopMarkerRepetitionResumesAcrossElements) {
  auto protocol = compile(kRepSpec, 1, 0);
  auto g = Framework::load_spec(kRepSpec).value();
  Message msg(g);
  msg.set_text("fbody", "body");
  for (int i = 0; i < 4; ++i) {
    msg.append("fopts");
    // A '\r' inside an element: during the trickle the buffer tail will
    // look like a half-delivered stop marker ("\r" of "\r\n"), exercising
    // the undecided-marker truncation rule.
    msg.set_text("fopts[" + std::to_string(i) + "].fopt",
                 "opt\r" + std::to_string(i));
  }
  const Bytes wire = protocol->serialize(msg.root(), 9).value();
  auto oneshot = protocol->parse(wire);
  ASSERT_TRUE(oneshot.ok()) << oneshot.error().message;

  for (const std::size_t step : {1u, 2u, 5u}) {
    ParseResume resume;
    InstPool nodes;
    std::size_t consumed = 0;
    auto resumed =
        trickle_parse(*protocol, wire, step, resume, nodes, &consumed);
    ASSERT_TRUE(resumed.ok()) << "step " << step << ": "
                              << resumed.error().message;
    EXPECT_EQ(consumed, wire.size());
    EXPECT_TRUE(ast::equal(**resumed, **oneshot)) << "step " << step;
  }
}

TEST(ParseResume, RandomChunkingsMatchOneShotOnObfuscatedSpec) {
  // An obfuscated delimiter-bounded wire format: transformations reshuffle
  // the tree, but resumed parses must still be byte-identical to one-shot.
  // Not every (seed, message) pair survives obfuscation of a delimited
  // format (a transformed byte may collide with a delimiter, which emit
  // rejects), so hunt for a few working combinations.
  auto g = Framework::load_spec(kDelimSpec).value();
  int exercised = 0;
  Rng rng(2026);
  for (std::uint64_t seed = 100; seed < 140 && exercised < 3; ++seed) {
    auto protocol = compile(kDelimSpec, seed, 2);
    if (protocol == nullptr) continue;
    if (!stream_safe(protocol->wire_graph()).ok()) continue;
    Message msg(g);
    msg.set_text("ftag", "9");
    msg.set_text("fbody", "resumable under obfuscation");
    auto wire = protocol->serialize(msg.root(), seed);
    if (!wire.ok()) continue;  // delimiter collision: try the next seed
    auto oneshot = protocol->parse(*wire);
    ASSERT_TRUE(oneshot.ok()) << oneshot.error().message;

    for (int round = 0; round < 4; ++round) {
      ParseResume resume;
      InstPool nodes;
      std::size_t consumed = 0;
      std::size_t have = 0;
      Expected<InstPtr> tree = Unexpected("never attempted");
      while (true) {
        have = std::min<std::size_t>(have + rng.between(1, 9), wire->size());
        tree = protocol->parse_prefix(BytesView(*wire).first(have), &consumed,
                                      nullptr, nullptr, &nodes, nullptr,
                                      &resume);
        if (tree.ok()) break;
        ASSERT_TRUE(tree.error().truncated())
            << "seed " << seed << " at " << have << ": "
            << tree.error().message;
        ASSERT_LT(have, wire->size());
      }
      EXPECT_EQ(consumed, wire->size());
      EXPECT_TRUE(ast::equal(**tree, **oneshot)) << "seed " << seed;
    }
    ++exercised;
  }
  EXPECT_GE(exercised, 1) << "no obfuscated delimiter spec exercised";
}

TEST(ParseResume, ShrunkenFrontAutoInvalidatesAndMalformedClears) {
  auto protocol = compile(kDelimSpec, 1, 0);
  auto g = Framework::load_spec(kDelimSpec).value();
  Message msg(g);
  msg.set_text("ftag", "1");
  msg.set_text("fbody", "invalidation probe");
  const Bytes wire = protocol->serialize(msg.root(), 1).value();

  ParseResume resume;
  InstPool nodes;
  std::size_t consumed = 0;
  // Suspend midway.
  auto partial = protocol->parse_prefix(BytesView(wire).first(wire.size() / 2),
                                        &consumed, nullptr, nullptr, &nodes,
                                        nullptr, &resume);
  ASSERT_FALSE(partial.ok());
  ASSERT_TRUE(resume.active());
  EXPECT_GT(resume.depth(), 0u);

  // A shorter front cannot be "the same front with bytes appended": the
  // checkpoint is dropped automatically and the attempt restarts clean.
  auto shorter = protocol->parse_prefix(BytesView(wire).first(2), &consumed,
                                        nullptr, nullptr, &nodes, nullptr,
                                        &resume);
  ASSERT_FALSE(shorter.ok());
  EXPECT_TRUE(shorter.error().truncated());
  EXPECT_GT(resume.stats().invalidations, 0u);

  // Malformed input clears the checkpoint (nothing to continue).
  Bytes garbage = {0x00, 0x01, 0x02};  // ftag must be ascii digits
  garbage.resize(24, 0x02);
  auto bad = protocol->parse_prefix(garbage, &consumed, nullptr, nullptr,
                                    &nodes, nullptr, &resume);
  // Whether this exact garbage parses or not, no checkpoint may survive a
  // non-truncated outcome.
  if (!bad.ok() && !bad.error().truncated()) {
    EXPECT_FALSE(resume.active());
  }

  // And an explicit invalidate always works, releasing pooled partials.
  auto again = protocol->parse_prefix(BytesView(wire).first(wire.size() / 2),
                                      &consumed, nullptr, nullptr, &nodes,
                                      nullptr, &resume);
  ASSERT_FALSE(again.ok());
  ASSERT_TRUE(resume.active());
  resume.invalidate();
  EXPECT_FALSE(resume.active());
  EXPECT_EQ(resume.depth(), 0u);

  // After all of that, a clean full parse still round-trips.
  auto full = protocol->parse_prefix(wire, &consumed, nullptr, nullptr,
                                     &nodes, nullptr, &resume);
  ASSERT_TRUE(full.ok()) << full.error().message;
  EXPECT_EQ(consumed, wire.size());
}

TEST(ParseResume, SuspendedTreesRecycleIntoThePool) {
  auto protocol = compile(kDelimSpec, 1, 0);
  auto g = Framework::load_spec(kDelimSpec).value();
  Message msg(g);
  msg.set_text("ftag", "3");
  msg.set_text("fbody", "pool hygiene");
  const Bytes wire = protocol->serialize(msg.root(), 2).value();

  InstPool nodes;
  {
    ParseResume resume;
    std::size_t consumed = 0;
    for (int round = 0; round < 8; ++round) {
      auto tree = trickle_parse(*protocol, wire, 1, resume, nodes, &consumed);
      ASSERT_TRUE(tree.ok());
      // Dropping the result returns every node — including any that lived
      // in suspended partials along the way — to the freelist.
    }
    resume.invalidate();
  }
  EXPECT_EQ(nodes.stats().live, 0u)
      << "suspended partial trees leaked out of the pool";
}

}  // namespace
}  // namespace protoobf
