// The framework's central property: parse(serialize(m)) == canonical(m)
// for every protocol, message, obfuscation level and seed.
//
// "The transformations are, by construction, invertible to avoid
// ambiguities when the messages are parsed" — this suite is that claim,
// executed across random transformation selections (different seeds pick
// different applicable transformations per node) and random messages.
#include <gtest/gtest.h>

#include "ast/ast.hpp"
#include "core/protoobf.hpp"
#include "protocols/http.hpp"
#include "protocols/modbus.hpp"

namespace protoobf {
namespace {

enum class Proto { ModbusRequest, ModbusResponse, Http, HttpResponse };

struct Case {
  Proto proto;
  int per_node;
  std::uint64_t seed;
};

std::string case_name(const ::testing::TestParamInfo<Case>& info) {
  const char* proto = info.param.proto == Proto::ModbusRequest ? "ModbusReq"
                      : info.param.proto == Proto::ModbusResponse
                          ? "ModbusResp"
                      : info.param.proto == Proto::Http ? "Http"
                                                        : "HttpResp";
  return std::string(proto) + "_o" + std::to_string(info.param.per_node) +
         "_s" + std::to_string(info.param.seed);
}

Graph load_graph(Proto proto) {
  const std::string_view spec = proto == Proto::ModbusRequest
                                    ? modbus::request_spec()
                                : proto == Proto::ModbusResponse
                                    ? modbus::response_spec()
                                : proto == Proto::Http
                                    ? http::request_spec()
                                    : http::response_spec();
  auto graph = Framework::load_spec(spec);
  EXPECT_TRUE(graph.ok()) << graph.error().message;
  return std::move(graph.value());
}

Message random_message(Proto proto, const Graph& g, Rng& rng) {
  switch (proto) {
    case Proto::ModbusRequest: return modbus::random_request(g, rng);
    case Proto::ModbusResponse: return modbus::random_response(g, rng);
    case Proto::Http: return http::random_request(g, rng);
    case Proto::HttpResponse: return http::random_response(g, rng);
  }
  return Message(g);
}

class RoundTrip : public ::testing::TestWithParam<Case> {};

TEST_P(RoundTrip, ParseSerializeIsIdentity) {
  const Case& param = GetParam();
  const Graph graph = load_graph(param.proto);

  ObfuscationConfig config;
  config.seed = param.seed;
  config.per_node = param.per_node;
  auto protocol = Framework::generate(graph, config);
  ASSERT_TRUE(protocol.ok()) << protocol.error().message;

  Rng workload(param.seed * 7919 + 17);
  for (int i = 0; i < 12; ++i) {
    Message msg = random_message(param.proto, graph, workload);

    InstPtr canonical = ast::clone(msg.root());
    const Status canon = protocol->canonicalize(*canonical);
    ASSERT_TRUE(canon.ok()) << "canonicalize: " << canon.error().message
                            << "\nmessage:\n"
                            << ast::dump(graph, msg.root());

    auto wire = protocol->serialize(msg.root(), /*msg_seed=*/param.seed + i);
    ASSERT_TRUE(wire.ok()) << "serialize: " << wire.error().message
                           << "\nmessage:\n"
                           << ast::dump(graph, msg.root());

    auto parsed = protocol->parse(*wire);
    ASSERT_TRUE(parsed.ok()) << "parse: " << parsed.error().message
                             << " at offset " << parsed.error().offset
                             << "\nwire:\n"
                             << hexdump(*wire) << "\nmessage:\n"
                             << ast::dump(graph, msg.root());

    EXPECT_TRUE(ast::equal(*canonical, **parsed))
        << "canonical:\n"
        << ast::dump(graph, *canonical) << "\nparsed:\n"
        << ast::dump(graph, **parsed) << "\nwire:\n"
        << hexdump(*wire);
  }
}

std::vector<Case> all_cases() {
  std::vector<Case> cases;
  for (Proto proto : {Proto::ModbusRequest, Proto::ModbusResponse,
                      Proto::Http, Proto::HttpResponse}) {
    for (int per_node : {0, 1, 2, 3, 4}) {
      for (std::uint64_t seed : {1ull, 42ull, 20180625ull}) {
        cases.push_back({proto, per_node, seed});
      }
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(AllProtocols, RoundTrip,
                         ::testing::ValuesIn(all_cases()), case_name);

// The non-obfuscated serializations must match the real protocols
// byte-for-byte — otherwise we would be "round-tripping" a broken codec.
TEST(RoundTrip, PlainModbusMatchesKnownBytes) {
  const Graph graph = load_graph(Proto::ModbusRequest);
  ObfuscationConfig config;
  config.per_node = 0;
  auto protocol = Framework::generate(graph, config);
  ASSERT_TRUE(protocol.ok());

  // Read Holding Registers: tx=0x0001, unit=0x11, addr=0x006B, qty=0x0003
  // (the canonical example from the simplymodbus.ca reference).
  Message msg = modbus::make_read_holding(graph, 0x0001, 0x11, 0x006b, 3);
  auto wire = protocol->serialize(msg.root(), 1);
  ASSERT_TRUE(wire.ok()) << wire.error().message;
  EXPECT_EQ(to_hex(*wire), "0001000000061103006b0003");
}

TEST(RoundTrip, PlainHttpMatchesKnownBytes) {
  const Graph graph = load_graph(Proto::Http);
  ObfuscationConfig config;
  config.per_node = 0;
  auto protocol = Framework::generate(graph, config);
  ASSERT_TRUE(protocol.ok());

  Message msg = http::make_get(graph, "/index.html",
                               {{"Host", "example.com"}, {"Accept", "*/*"}});
  auto wire = protocol->serialize(msg.root(), 1);
  ASSERT_TRUE(wire.ok()) << wire.error().message;
  EXPECT_EQ(to_text(*wire),
            "GET /index.html HTTP/1.1\r\n"
            "Host: example.com\r\n"
            "Accept: */*\r\n"
            "\r\n");
}

TEST(RoundTrip, ObfuscatedWireDiffersFromPlain) {
  const Graph graph = load_graph(Proto::ModbusRequest);
  ObfuscationConfig plain_cfg;
  plain_cfg.per_node = 0;
  ObfuscationConfig obf_cfg;
  obf_cfg.per_node = 1;
  obf_cfg.seed = 99;
  auto plain = Framework::generate(graph, plain_cfg);
  auto obf = Framework::generate(graph, obf_cfg);
  ASSERT_TRUE(plain.ok());
  ASSERT_TRUE(obf.ok());
  ASSERT_GT(obf->stats().applied, 0u);

  Message msg = modbus::make_read_holding(graph, 1, 0x11, 0x6b, 3);
  const auto plain_wire = plain->serialize(msg.root(), 5);
  const auto obf_wire = obf->serialize(msg.root(), 5);
  ASSERT_TRUE(plain_wire.ok());
  ASSERT_TRUE(obf_wire.ok()) << obf_wire.error().message;
  EXPECT_NE(to_hex(*plain_wire), to_hex(*obf_wire));
}

// Two serializations of the same message with different message seeds must
// differ whenever a randomized transformation was applied (the paper's
// "various representations of the same message" challenge).
TEST(RoundTrip, RandomizedTransformsVaryTheWireImage) {
  const Graph graph = load_graph(Proto::ModbusRequest);
  ObfuscationConfig config;
  config.per_node = 2;
  config.seed = 7;
  config.enabled = {TransformKind::SplitAdd};
  auto protocol = Framework::generate(graph, config);
  ASSERT_TRUE(protocol.ok());
  ASSERT_GT(protocol->stats().applied, 0u);

  Message msg = modbus::make_read_holding(graph, 1, 0x11, 0x6b, 3);
  const auto wire_a = protocol->serialize(msg.root(), 100);
  const auto wire_b = protocol->serialize(msg.root(), 200);
  ASSERT_TRUE(wire_a.ok());
  ASSERT_TRUE(wire_b.ok());
  EXPECT_NE(to_hex(*wire_a), to_hex(*wire_b));

  // Both decode to the same logical message.
  auto parsed_a = protocol->parse(*wire_a);
  auto parsed_b = protocol->parse(*wire_b);
  ASSERT_TRUE(parsed_a.ok());
  ASSERT_TRUE(parsed_b.ok());
  EXPECT_TRUE(ast::equal(**parsed_a, **parsed_b));
}

}  // namespace
}  // namespace protoobf
