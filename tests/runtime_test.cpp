// Runtime serializer/parser tests: every boundary kind, derived fields,
// error handling on malformed wire input, and the per-element reference
// scoping (TLV pattern).
#include <gtest/gtest.h>

#include "core/protoobf.hpp"
#include "runtime/derive.hpp"
#include "runtime/emit.hpp"

namespace protoobf {
namespace {

Graph spec(std::string_view text) {
  auto g = Framework::load_spec(text);
  EXPECT_TRUE(g.ok()) << g.error().message;
  return std::move(g.value());
}

ObfuscatedProtocol plain(const Graph& g) {
  ObfuscationConfig cfg;
  cfg.per_node = 0;
  return Framework::generate(g, cfg).value();
}

// --- boundary kinds, plain (o = 0) ------------------------------------------

TEST(Runtime, FixedAndEndBoundaries) {
  Graph g = spec(R"(
protocol P
m: seq end {
  a: terminal fixed(2)
  rest: terminal end
}
)");
  auto p = plain(g);
  Message msg(g);
  msg.set("a", Bytes{0xca, 0xfe});
  msg.set("rest", to_bytes("rest-of-message"));
  auto wire = p.serialize(msg.root(), 1);
  ASSERT_TRUE(wire.ok());
  EXPECT_EQ(to_hex(BytesView(*wire).first(2)), "cafe");
  auto back = p.parse(*wire);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(ast::find_path(g, **back, "m.rest")->value,
            to_bytes("rest-of-message"));
}

TEST(Runtime, DelimitedBoundaryScansFirstOccurrence) {
  Graph g = spec(R"(
protocol P
m: seq end {
  word: terminal delimited(";")
  rest: terminal end
}
)");
  auto p = plain(g);
  Message msg(g);
  msg.set_text("word", "alpha");
  msg.set_text("rest", "beta;gamma");  // delimiter inside a later field is fine
  auto wire = p.serialize(msg.root(), 1);
  ASSERT_TRUE(wire.ok());
  EXPECT_EQ(to_text(*wire), "alpha;beta;gamma");
  auto back = p.parse(*wire);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(ast::find_path(g, **back, "m.word")->value, to_bytes("alpha"));
}

TEST(Runtime, SerializerRejectsValueContainingItsDelimiter) {
  Graph g = spec(R"(
protocol P
m: seq end {
  word: terminal delimited(";")
  rest: terminal end
}
)");
  auto p = plain(g);
  Message msg(g);
  msg.set_text("word", "al;pha");  // would break the receiver's scan
  msg.set_text("rest", "x");
  EXPECT_FALSE(p.serialize(msg.root(), 1).ok());
}

TEST(Runtime, LengthFieldIsDerivedNotUserSet) {
  Graph g = spec(R"(
protocol P
m: seq end {
  len: terminal fixed(2)
  payload: terminal length(len)
  rest: terminal end
}
)");
  auto p = plain(g);
  Message msg(g);
  msg.set_text("payload", "0123456789");
  msg.set_text("rest", "!!");
  // len was never set: the framework derives 10.
  auto wire = p.serialize(msg.root(), 1);
  ASSERT_TRUE(wire.ok());
  EXPECT_EQ((*wire)[0], 0);
  EXPECT_EQ((*wire)[1], 10);
  auto back = p.parse(*wire);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(ast::find_path(g, **back, "m.payload")->value,
            to_bytes("0123456789"));
}

TEST(Runtime, AsciiLengthField) {
  Graph g = spec(R"(
protocol P
m: seq end {
  len: terminal delimited(";") ascii
  payload: terminal length(len)
}
)");
  auto p = plain(g);
  Message msg(g);
  msg.set_text("payload", "hello world");
  auto wire = p.serialize(msg.root(), 1);
  ASSERT_TRUE(wire.ok());
  EXPECT_EQ(to_text(*wire), "11;hello world");
  auto back = p.parse(*wire);
  ASSERT_TRUE(back.ok());
}

TEST(Runtime, TabularCountIsDerived) {
  Graph g = spec(R"(
protocol P
m: seq end {
  n: terminal fixed(1)
  items: tabular(n) { item: terminal fixed(2) }
}
)");
  auto p = plain(g);
  Message msg(g);
  for (int i = 0; i < 3; ++i) {
    msg.append("items");
    msg.set_uint("items[" + std::to_string(i) + "].item", 0x0a00 + i);
  }
  auto wire = p.serialize(msg.root(), 1);
  ASSERT_TRUE(wire.ok());
  EXPECT_EQ(to_hex(*wire), "030a000a010a02");
  auto back = p.parse(*wire);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(ast::find_path(g, **back, "m.items")->children.size(), 3u);
}

TEST(Runtime, EmptyTabularRoundTrips) {
  Graph g = spec(R"(
protocol P
m: seq end {
  n: terminal fixed(1)
  items: tabular(n) { item: terminal fixed(2) }
  rest: terminal end
}
)");
  auto p = plain(g);
  Message msg(g);
  msg.set_text("rest", "z");
  auto wire = p.serialize(msg.root(), 1);
  ASSERT_TRUE(wire.ok());
  auto back = p.parse(*wire);
  ASSERT_TRUE(back.ok());
  EXPECT_TRUE(ast::find_path(g, **back, "m.items")->children.empty());
}

TEST(Runtime, TlvPerElementLengths) {
  // The reference-scoping stress case: each element carries its own length.
  Graph g = spec(R"(
protocol P
m: seq end {
  records: repeat end {
    record: seq {
      rlen: terminal fixed(1)
      rval: terminal length(rlen)
    }
  }
}
)");
  auto p = plain(g);
  Message msg(g);
  const char* values[] = {"a", "bcd", "", "efghij"};
  for (int i = 0; i < 4; ++i) {
    msg.append("records");
    msg.set_text("records[" + std::to_string(i) + "].record.rval", values[i]);
  }
  auto wire = p.serialize(msg.root(), 1);
  ASSERT_TRUE(wire.ok()) << wire.error().message;
  EXPECT_EQ(to_hex(*wire), "016103626364000665666768696a");
  auto back = p.parse(*wire);
  ASSERT_TRUE(back.ok()) << back.error().message;
  const Inst* records = ast::find_path(g, **back, "m.records");
  ASSERT_EQ(records->children.size(), 4u);
  EXPECT_EQ(records->children[1]->children[1]->value, to_bytes("bcd"));
}

TEST(Runtime, OptionalPresenceFollowsCondition) {
  Graph g = spec(R"(
protocol P
m: seq end {
  kind: terminal fixed(1)
  extra: optional (kind == 0x02) { ev: terminal fixed(2) }
  rest: terminal end
}
)");
  auto p = plain(g);

  Message with(g);
  with.set_uint("kind", 2);
  with.set("ev", Bytes{0xaa, 0xbb});
  with.set_text("rest", "x");
  auto wire = p.serialize(with.root(), 1);
  ASSERT_TRUE(wire.ok());
  EXPECT_EQ(to_hex(*wire), "02aabb78");

  Message without(g);
  without.set_uint("kind", 1);
  without.set_text("rest", "x");
  auto wire2 = p.serialize(without.root(), 1);
  ASSERT_TRUE(wire2.ok());
  EXPECT_EQ(to_hex(*wire2), "0178");

  auto back = p.parse(*wire);
  ASSERT_TRUE(back.ok());
  EXPECT_TRUE(ast::find_path(g, **back, "m.extra")->present);
  auto back2 = p.parse(*wire2);
  ASSERT_TRUE(back2.ok());
  EXPECT_FALSE(ast::find_path(g, **back2, "m.extra")->present);
}

TEST(Runtime, SerializerRejectsPresenceConditionMismatch) {
  Graph g = spec(R"(
protocol P
m: seq end {
  kind: terminal fixed(1)
  extra: optional (kind == 0x02) { ev: terminal fixed(2) }
  rest: terminal end
}
)");
  auto p = plain(g);
  Message msg(g);
  msg.set_uint("kind", 1);     // condition says absent...
  msg.set("ev", Bytes{1, 2});  // ...but the application filled the field
  msg.set_text("rest", "x");
  const auto result = p.serialize(msg.root(), 1);
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.error().message.find("condition"), std::string::npos);
}

TEST(Runtime, RepetitionStopMarker) {
  Graph g = spec(R"(
protocol P
m: seq end {
  lines: repeat delimited("$") { line: terminal delimited("$") }
  rest: terminal end
}
)");
  auto p = plain(g);
  Message msg(g);
  msg.append("lines");
  msg.append("lines");
  msg.set_text("lines[0].line", "one");
  msg.set_text("lines[1].line", "two");
  msg.set_text("rest", "tail");
  auto wire = p.serialize(msg.root(), 1);
  ASSERT_TRUE(wire.ok());
  EXPECT_EQ(to_text(*wire), "one$two$$tail");
  auto back = p.parse(*wire);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(ast::find_path(g, **back, "m.lines")->children.size(), 2u);
}

// --- malformed wire input -----------------------------------------------------

class MalformedWire : public ::testing::Test {
 protected:
  Graph g = spec(R"(
protocol P
m: seq end {
  len: terminal fixed(2)
  payload: terminal length(len)
  word: terminal delimited(";")
  n: terminal fixed(1)
  items: tabular(n) { item: terminal fixed(2) }
}
)");
  ObfuscatedProtocol p = plain(g);

  Bytes good_wire() {
    Message msg(g);
    msg.set_text("payload", "abc");
    msg.set_text("word", "w");
    msg.append("items");
    msg.set_uint("items[0].item", 7);
    return p.serialize(msg.root(), 1).value();
  }
};

TEST_F(MalformedWire, GoodWireParses) {
  EXPECT_TRUE(p.parse(good_wire()).ok());
}

TEST_F(MalformedWire, TruncatedInputFails) {
  Bytes wire = good_wire();
  wire.resize(wire.size() - 1);
  const auto result = p.parse(wire);
  ASSERT_FALSE(result.ok());
}

TEST_F(MalformedWire, TrailingGarbageFails) {
  Bytes wire = good_wire();
  wire.push_back(0x00);
  const auto result = p.parse(wire);
  ASSERT_FALSE(result.ok());
}

TEST_F(MalformedWire, LengthBeyondBufferFails) {
  Bytes wire = good_wire();
  wire[1] = 0xff;  // length 0x00ff >> actual payload
  const auto result = p.parse(wire);
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.error().message.find("length"), std::string::npos);
}

TEST_F(MalformedWire, MissingDelimiterFails) {
  Bytes wire = good_wire();
  for (auto& b : wire) {
    if (b == ';') b = ':';
  }
  const auto result = p.parse(wire);
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.error().message.find("delimiter"), std::string::npos);
}

TEST_F(MalformedWire, CounterBeyondBufferFails) {
  Bytes wire = good_wire();
  wire[wire.size() - 3] = 9;  // n = 9 but only one item follows
  EXPECT_FALSE(p.parse(wire).ok());
}

TEST_F(MalformedWire, EmptyInputFails) {
  EXPECT_FALSE(p.parse(Bytes{}).ok());
}

// --- obfuscated integrity ------------------------------------------------------

TEST(RuntimeObfuscated, ConstantFieldMismatchIsRejected) {
  Graph g = spec(R"(
protocol P
m: seq end {
  magic: terminal fixed(2) const(0x1234)
  rest: terminal end
}
)");
  ObfuscationConfig cfg;
  cfg.per_node = 1;
  cfg.seed = 3;
  cfg.enabled = {TransformKind::ConstXor};
  auto p = Framework::generate(g, cfg).value();
  Message msg(g);
  msg.set_text("rest", "x");
  Bytes wire = p.serialize(msg.root(), 1).value();
  ASSERT_TRUE(p.parse(wire).ok());
  // Corrupt the (obfuscated) magic: the parse must reject the message when
  // the recovered constant no longer matches the specification.
  wire[0] ^= 0x55;
  const auto result = p.parse(wire);
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.error().message.find("constant"), std::string::npos);
}

TEST(RuntimeObfuscated, FieldSpansCoverTheWire) {
  Graph g = spec(R"(
protocol P
m: seq end {
  a: terminal fixed(2)
  b: terminal fixed(3)
  c: terminal end
}
)");
  ObfuscationConfig cfg;
  cfg.per_node = 2;
  cfg.seed = 11;
  auto p = Framework::generate(g, cfg).value();
  Message msg(g);
  msg.set("a", Bytes{1, 2});
  msg.set("b", Bytes{3, 4, 5});
  msg.set("c", Bytes{6, 7});
  std::vector<FieldSpan> spans;
  auto wire = p.serialize(msg.root(), 1, &spans);
  ASSERT_TRUE(wire.ok());
  ASSERT_FALSE(spans.empty());
  std::size_t covered = 0;
  for (const FieldSpan& span : spans) {
    EXPECT_LE(span.offset + span.length, wire->size());
    covered += span.length;
  }
  EXPECT_EQ(covered, wire->size());  // terminals partition the buffer
}

TEST(RuntimeObfuscated, MirroredWholeMessage) {
  Graph g = spec(R"(
protocol P
m: seq end {
  a: terminal fixed(2)
  b: terminal end
}
)");
  ObfuscationConfig cfg;
  cfg.per_node = 1;
  cfg.seed = 5;
  cfg.enabled = {TransformKind::ReadFromEnd};
  auto p = Framework::generate(g, cfg).value();
  ASSERT_GT(p.stats().applied, 0u);
  Message msg(g);
  msg.set("a", Bytes{0x11, 0x22});
  msg.set_text("b", "tail");
  auto wire = p.serialize(msg.root(), 1);
  ASSERT_TRUE(wire.ok());
  auto back = p.parse(*wire);
  ASSERT_TRUE(back.ok()) << back.error().message;
  EXPECT_EQ(ast::find_path(g, **back, "m.a")->value, (Bytes{0x11, 0x22}));
}

}  // namespace
}  // namespace protoobf
