// Session subsystem tests: protocol cache semantics, arena equivalence,
// and batch/single-path agreement.
//
// The session layer's contract is "same bytes, different plumbing": every
// pooled or batched path must be observably identical to the plain
// ObfuscatedProtocol calls. These tests pin that equivalence across
// protocols, obfuscation levels and seeds, plus the cache's hit/miss/evict
// behaviour and the worker pool's coverage guarantees.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <mutex>
#include <set>
#include <thread>

#include "protocols/http.hpp"
#include "protocols/modbus.hpp"
#include "session/protocol_cache.hpp"
#include "session/session.hpp"

namespace protoobf {
namespace {

constexpr std::string_view kSmallSpec = R"spec(
protocol Small

msg: seq end {
  len: terminal fixed(1)
  body: seq length(len) {
    tag: terminal fixed(1)
    data: terminal end
  }
}
)spec";

ObfuscationConfig config_of(std::uint64_t seed, int per_node) {
  ObfuscationConfig cfg;
  cfg.seed = seed;
  cfg.per_node = per_node;
  return cfg;
}

// --- ProtocolCache ----------------------------------------------------------

TEST(ProtocolCache, HitReturnsSameInstance) {
  ProtocolCache cache;
  auto first = cache.get_or_compile(kSmallSpec, config_of(1, 2));
  auto second = cache.get_or_compile(kSmallSpec, config_of(1, 2));
  ASSERT_TRUE(first.ok()) << first.error().message;
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(first->get(), second->get());
  const auto stats = cache.stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.size, 1u);
}

TEST(ProtocolCache, DistinctConfigsAreDistinctEntries) {
  ProtocolCache cache;
  auto a = cache.get_or_compile(kSmallSpec, config_of(1, 2));
  auto b = cache.get_or_compile(kSmallSpec, config_of(2, 2));   // new seed
  auto c = cache.get_or_compile(kSmallSpec, config_of(1, 3));   // new level
  ObfuscationConfig restricted = config_of(1, 2);
  restricted.enabled = {TransformKind::ConstXor};
  auto d = cache.get_or_compile(kSmallSpec, restricted);
  ASSERT_TRUE(a.ok() && b.ok() && c.ok() && d.ok());
  EXPECT_NE(a->get(), b->get());
  EXPECT_NE(a->get(), c->get());
  EXPECT_NE(a->get(), d->get());
  EXPECT_EQ(cache.stats().misses, 4u);
  EXPECT_EQ(cache.stats().hits, 0u);
}

TEST(ProtocolCache, DistinctSpecsAreDistinctEntries) {
  ProtocolCache cache;
  auto a = cache.get_or_compile(modbus::request_spec(), config_of(5, 1));
  auto b = cache.get_or_compile(modbus::response_spec(), config_of(5, 1));
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_NE(a->get(), b->get());
  EXPECT_EQ(cache.stats().misses, 2u);
}

TEST(ProtocolCache, EvictsLeastRecentlyUsed) {
  ProtocolCache cache(/*capacity=*/2);
  auto a = cache.get_or_compile(kSmallSpec, config_of(1, 1));
  auto b = cache.get_or_compile(kSmallSpec, config_of(2, 1));
  // Touch `a` so `b` is the LRU entry, then insert a third.
  (void)cache.get_or_compile(kSmallSpec, config_of(1, 1));
  auto c = cache.get_or_compile(kSmallSpec, config_of(3, 1));
  ASSERT_TRUE(a.ok() && b.ok() && c.ok());
  EXPECT_EQ(cache.stats().evictions, 1u);
  EXPECT_EQ(cache.stats().size, 2u);

  // `a` stays a hit; evicted `b` recompiles (a fresh miss, new instance)
  // while the handed-out shared_ptr keeps the old instance alive.
  const auto before = cache.stats();
  auto a2 = cache.get_or_compile(kSmallSpec, config_of(1, 1));
  EXPECT_EQ(cache.stats().hits, before.hits + 1);
  EXPECT_EQ(a->get(), a2->get());
  auto b2 = cache.get_or_compile(kSmallSpec, config_of(2, 1));
  EXPECT_EQ(cache.stats().misses, before.misses + 1);
  EXPECT_NE(b->get(), b2->get());
  EXPECT_TRUE((*b)->serialize(Message((*b)->original()).root(), 1).ok() ||
              true);  // evicted instance still safely usable
}

TEST(ProtocolCache, CompileErrorIsReportedNotCached) {
  ProtocolCache cache;
  auto bad = cache.get_or_compile("protocol Broken {", config_of(1, 1));
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ(cache.stats().size, 0u);
}

TEST(ProtocolCache, ConcurrentMissesOnOneKeyCompileOnce) {
  // A miss storm on one key must compile exactly once: the first thread in
  // becomes the leader, the rest either coalesce onto its in-flight compile
  // or (arriving after publication) hit the cache.
  ProtocolCache cache;
  constexpr int kThreads = 8;
  std::atomic<int> ready{0};
  std::vector<ProtocolCache::Entry> entries(kThreads);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      ready.fetch_add(1);
      while (ready.load() < kThreads) std::this_thread::yield();
      auto entry = cache.get_or_compile(http::request_spec(), config_of(5, 2));
      ASSERT_TRUE(entry.ok()) << entry.error().message;
      entries[t] = *entry;
    });
  }
  for (auto& t : threads) t.join();
  for (int t = 1; t < kThreads; ++t) {
    EXPECT_EQ(entries[0].get(), entries[t].get()) << "thread " << t;
  }
  const auto stats = cache.stats();
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.hits + stats.coalesced,
            static_cast<std::size_t>(kThreads - 1));
  EXPECT_EQ(stats.size, 1u);
}

TEST(ProtocolCache, CoalescedWaitersSeeCompileErrors) {
  ProtocolCache cache;
  constexpr int kThreads = 4;
  std::atomic<int> ready{0};
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      ready.fetch_add(1);
      while (ready.load() < kThreads) std::this_thread::yield();
      auto entry = cache.get_or_compile("protocol Broken {", config_of(1, 1));
      if (!entry.ok()) failures.fetch_add(1);
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(failures.load(), kThreads);
  EXPECT_EQ(cache.stats().size, 0u);
}

TEST(ProtocolCache, GraphOverloadSharesEntriesViaHash) {
  ProtocolCache cache;
  auto g = Framework::load_spec(kSmallSpec).value();
  const std::uint64_t h = ProtocolCache::hash_graph(g);
  auto a = cache.get_or_compile(g, h, config_of(9, 2));
  auto b = cache.get_or_compile(g, h, config_of(9, 2));
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(a->get(), b->get());
  EXPECT_EQ(cache.stats().hits, 1u);
}

// --- WorkerPool -------------------------------------------------------------

TEST(WorkerPool, CoversEveryIndexExactlyOnce) {
  WorkerPool pool(/*threads=*/3);
  EXPECT_EQ(pool.width(), 4u);
  std::vector<std::atomic<int>> seen(101);
  pool.parallel_for(101, [&](std::size_t, std::size_t begin,
                             std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) seen[i].fetch_add(1);
  });
  for (const auto& count : seen) EXPECT_EQ(count.load(), 1);
}

TEST(WorkerPool, ShardIdsAreDenseAndDistinct) {
  WorkerPool pool(/*threads=*/2);
  std::mutex mu;
  std::set<std::size_t> shards;
  pool.parallel_for(30, [&](std::size_t shard, std::size_t, std::size_t) {
    std::lock_guard<std::mutex> lock(mu);
    shards.insert(shard);
  });
  for (const std::size_t shard : shards) EXPECT_LT(shard, pool.width());
}

TEST(WorkerPool, ConcurrentCallsWaitOnlyOnTheirOwnShards) {
  // Regression for the global in-flight counter: caller B's wait must not
  // be entangled with caller A's shards. A's shards block until B finishes
  // its own parallel_for — with shared completion state that is a deadlock
  // (B waits for A's blocked shards, which wait for B). A watchdog turns a
  // regression into a failure instead of a hang.
  WorkerPool pool(/*threads=*/4);
  std::atomic<bool> release{false};
  std::atomic<bool> b_done{false};

  std::thread a([&] {
    pool.parallel_for(2, [&](std::size_t, std::size_t, std::size_t) {
      while (!release.load()) {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
    });
  });
  // Let A's shards occupy the pool before B starts.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));

  std::thread b([&] {
    std::atomic<int> covered{0};
    pool.parallel_for(2, [&](std::size_t, std::size_t begin,
                             std::size_t end) {
      covered += static_cast<int>(end - begin);
    });
    EXPECT_EQ(covered.load(), 2);
    b_done.store(true);
  });

  for (int i = 0; i < 500 && !b_done.load(); ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_TRUE(b_done.load())
      << "parallel_for waits are serialized across concurrent callers";
  release.store(true);
  a.join();
  b.join();
}

TEST(WorkerPool, TwoSessionsSharingAPoolBatchConcurrently) {
  // Two sessions over one pool running batches at the same time: results
  // must match the plain per-message paths, with no cross-talk between the
  // concurrent parallel_for waits.
  ProtocolCache cache;
  auto protocol =
      cache.get_or_compile(modbus::request_spec(), config_of(21, 2));
  ASSERT_TRUE(protocol.ok()) << protocol.error().message;
  auto g = Framework::load_spec(modbus::request_spec()).value();

  WorkerPool pool(/*threads=*/3);
  constexpr int kRounds = 8;
  constexpr std::size_t kBatch = 24;

  auto run_session = [&](std::uint64_t salt) {
    Rng rng(salt);
    std::vector<Message> msgs;
    for (std::size_t i = 0; i < kBatch; ++i) {
      msgs.push_back(modbus::random_request(g, rng));
    }
    std::vector<BatchItem> items;
    std::vector<Bytes> expected;
    for (std::size_t i = 0; i < kBatch; ++i) {
      items.push_back({&msgs[i].root(), salt + i});
      expected.push_back(
          (*protocol)->serialize(msgs[i].root(), salt + i).value());
    }
    Session session(*protocol, &pool);
    for (int round = 0; round < kRounds; ++round) {
      auto wires = session.serialize_batch(items);
      ASSERT_EQ(wires.size(), kBatch);
      for (std::size_t i = 0; i < kBatch; ++i) {
        ASSERT_TRUE(wires[i].ok()) << wires[i].error().message;
        EXPECT_EQ(*wires[i], expected[i]) << "item " << i;
      }
      std::vector<BytesView> views(expected.begin(), expected.end());
      auto trees = session.parse_batch(views);
      ASSERT_EQ(trees.size(), kBatch);
      for (std::size_t i = 0; i < kBatch; ++i) {
        ASSERT_TRUE(trees[i].ok()) << trees[i].error().message;
      }
    }
  };

  std::thread first([&] { run_session(1000); });
  std::thread second([&] { run_session(9000); });
  first.join();
  second.join();
}

TEST(WorkerPool, HandlesEmptyAndTinyRanges) {
  WorkerPool pool(/*threads=*/2);
  int calls = 0;
  pool.parallel_for(0, [&](std::size_t, std::size_t, std::size_t) {
    ++calls;
  });
  EXPECT_EQ(calls, 0);
  std::atomic<int> covered{0};
  pool.parallel_for(1, [&](std::size_t, std::size_t begin, std::size_t end) {
    covered += static_cast<int>(end - begin);
  });
  EXPECT_EQ(covered.load(), 1);
}

// --- Session equivalence ----------------------------------------------------

struct Workset {
  std::shared_ptr<const ObfuscatedProtocol> protocol;
  std::vector<Message> msgs;
};

Workset make_workset(std::string_view spec, int per_node, std::uint64_t seed,
                     bool http_msgs) {
  ProtocolCache cache;
  auto protocol = cache.get_or_compile(spec, config_of(seed, per_node));
  EXPECT_TRUE(protocol.ok()) << protocol.error().message;
  Workset w;
  w.protocol = *protocol;
  auto g = Framework::load_spec(spec).value();
  Rng rng(seed * 31 + 1);
  for (int i = 0; i < 12; ++i) {
    w.msgs.push_back(http_msgs ? http::random_request(g, rng)
                               : modbus::random_request(g, rng));
  }
  return w;
}

class SessionEquivalence
    : public ::testing::TestWithParam<std::tuple<bool, int>> {};

TEST_P(SessionEquivalence, ArenaAndBatchMatchPlainPaths) {
  const bool http_proto = std::get<0>(GetParam());
  const int per_node = std::get<1>(GetParam());
  Workset w = make_workset(
      http_proto ? http::request_spec() : modbus::request_spec(), per_node,
      /*seed=*/40 + per_node, http_proto);

  WorkerPool pool(/*threads=*/2);
  Session session(w.protocol, &pool);

  // Arena single-message path: byte-identical to the unpooled path, and
  // repeated use of the same arena stays identical (no stale-state bleed).
  for (int round = 0; round < 2; ++round) {
    for (std::size_t i = 0; i < w.msgs.size(); ++i) {
      const std::uint64_t msg_seed = 900 + i;
      auto plain = w.protocol->serialize(w.msgs[i].root(), msg_seed);
      auto pooled = session.serialize(w.msgs[i].root(), msg_seed);
      ASSERT_TRUE(plain.ok()) << plain.error().message;
      ASSERT_TRUE(pooled.ok()) << pooled.error().message;
      EXPECT_EQ(*plain, Bytes(pooled->begin(), pooled->end()));

      auto plain_tree = w.protocol->parse(*plain);
      auto pooled_tree = session.parse(*pooled);
      ASSERT_TRUE(plain_tree.ok()) << plain_tree.error().message;
      ASSERT_TRUE(pooled_tree.ok()) << pooled_tree.error().message;
      EXPECT_TRUE(ast::equal(**plain_tree, **pooled_tree));
    }
  }

  // Batched paths agree item-for-item with the per-message calls.
  std::vector<BatchItem> items;
  std::vector<Bytes> plain_wires;
  for (std::size_t i = 0; i < w.msgs.size(); ++i) {
    items.push_back({&w.msgs[i].root(), 7000 + i});
    plain_wires.push_back(
        w.protocol->serialize(w.msgs[i].root(), 7000 + i).value());
  }
  auto batched = session.serialize_batch(items);
  ASSERT_EQ(batched.size(), items.size());
  for (std::size_t i = 0; i < batched.size(); ++i) {
    ASSERT_TRUE(batched[i].ok()) << batched[i].error().message;
    EXPECT_EQ(*batched[i], plain_wires[i]) << "item " << i;
  }

  std::vector<BytesView> views(plain_wires.begin(), plain_wires.end());
  auto trees = session.parse_batch(views);
  ASSERT_EQ(trees.size(), views.size());
  for (std::size_t i = 0; i < trees.size(); ++i) {
    ASSERT_TRUE(trees[i].ok()) << trees[i].error().message;
    auto plain_tree = w.protocol->parse(plain_wires[i]);
    ASSERT_TRUE(plain_tree.ok());
    EXPECT_TRUE(ast::equal(**trees[i], **plain_tree)) << "item " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Protocols, SessionEquivalence,
    ::testing::Combine(::testing::Bool(), ::testing::Values(0, 1, 3)),
    [](const ::testing::TestParamInfo<std::tuple<bool, int>>& info) {
      return std::string(std::get<0>(info.param) ? "Http" : "Modbus") + "_o" +
             std::to_string(std::get<1>(info.param));
    });

TEST(SessionBatch, ErrorItemsAreIsolated) {
  ProtocolCache cache;
  auto protocol = cache.get_or_compile(kSmallSpec, config_of(3, 1));
  ASSERT_TRUE(protocol.ok()) << protocol.error().message;
  auto g = Framework::load_spec(kSmallSpec).value();

  Message good(g);
  good.set_uint("tag", 1);
  good.set("data", to_bytes("payload"));
  Message bad(g);
  bad.set_uint("tag", 2);
  bad.set("data", to_bytes("x"));
  // Corrupt the fixed(1) tag with a 3-byte value; ast::check rejects it.
  Inst* tag = ast::find_schema(bad.root(), g.find_by_name("tag").value());
  ASSERT_NE(tag, nullptr);
  tag->value = {0x01, 0x02, 0x03};

  Session session(*protocol);
  std::vector<BatchItem> items = {{&good.root(), 1},
                                  {&bad.root(), 2},
                                  {nullptr, 3},
                                  {&good.root(), 4}};
  auto results = session.serialize_batch(items);
  ASSERT_EQ(results.size(), 4u);
  EXPECT_TRUE(results[0].ok());
  EXPECT_FALSE(results[1].ok());
  EXPECT_FALSE(results[2].ok());
  ASSERT_TRUE(results[3].ok());
  EXPECT_EQ(*results[3],
            *(*protocol)->serialize(good.root(), 4));

  // A garbage wire image among valid ones fails alone too.
  const Bytes garbage = {0xff, 0xff, 0xff};
  std::vector<BytesView> views = {BytesView(*results[0]),
                                  BytesView(garbage),
                                  BytesView(*results[3])};
  auto trees = session.parse_batch(views);
  ASSERT_EQ(trees.size(), 3u);
  EXPECT_TRUE(trees[0].ok());
  EXPECT_FALSE(trees[1].ok());
  EXPECT_TRUE(trees[2].ok());
}

TEST(SessionArena, RetainsCapacityAcrossMessages) {
  ProtocolCache cache;
  auto protocol = cache.get_or_compile(kSmallSpec, config_of(11, 2));
  ASSERT_TRUE(protocol.ok()) << protocol.error().message;
  auto g = Framework::load_spec(kSmallSpec).value();
  Message msg(g);
  msg.set_uint("tag", 9);
  msg.set("data", to_bytes("0123456789abcdef"));

  Session session(*protocol);
  ASSERT_TRUE(session.serialize(msg.root(), 1).ok());
  auto first = session.serialize(msg.root(), 2);
  ASSERT_TRUE(first.ok());
  const Bytes kept(first->begin(), first->end());
  // Steady state: same message again reuses the buffer and reproduces the
  // same bytes.
  auto second = session.serialize(msg.root(), 2);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(kept, Bytes(second->begin(), second->end()));
}

}  // namespace
}  // namespace protoobf
