// Connection-volume soak under a seeded fault schedule (ISSUE 8 headline).
//
// Many ReliableClients hammer one sharded echo server over loopback while a
// FaultInjector on both sides shortens reads, storms EAGAIN, refuses dials
// and kills connections mid-frame at scheduled byte offsets. The pinned
// properties:
//
//   * zero loss — every sequence number every client sent is seen by the
//     server (dedup'd server-side: at-least-once allows duplicates on the
//     wire, never holes);
//   * zero duplication through ReliableClient — each client confirms every
//     message exactly once (cumulative acks reach exactly SOAK_MSGS);
//   * a pure transport fault never surfaces as Malformed — not in any
//     server close, any client parse result, or any client give-up;
//   * memory returns to baseline — SessionArena::shrink on the survivors
//     releases everything, and a graceful drain leaves zero active
//     connections on the server;
//   * the whole schedule replays from one logged seed (SOAK_SEED).
//
// Scale is env-driven so CI stays cheap and a real soak stays possible.
// Budget ~2 fds per connection plus a few dozen of overhead: the full
// 10k-connection soak needs `ulimit -n` comfortably above 20k.
//   SOAK_CONNS   clients            (default 48;  CI 256;  full soak 10000)
//   SOAK_MSGS    messages/client    (default 16)
//   SOAK_SEED    fault-plan seed    (default 42; echoed to stdout)
//   SOAK_FAULTS  0 disables faults  (default on)
//   SOAK_TIMEOUT_MS completion wait (default scales with the load)
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <mutex>
#include <set>
#include <thread>
#include <vector>

#include "core/protoobf.hpp"
#include "net/fault.hpp"
#include "net/reconnect.hpp"
#include "net/server.hpp"
#include "obs/families.hpp"
#include "obs/metrics.hpp"
#include "session/protocol_cache.hpp"
#include "util/rng.hpp"

namespace protoobf {
namespace {

using namespace protoobf::net;

constexpr std::string_view kSpec = R"(
protocol SoakDemo
msg: seq end {
  tag: terminal fixed(2)
  blen: terminal fixed(2)
  body: terminal length(blen)
}
)";

std::uint64_t env_u64(const char* name, std::uint64_t fallback) {
  const char* value = std::getenv(name);
  return value != nullptr && *value != '\0' ? std::strtoull(value, nullptr, 10)
                                            : fallback;
}

/// One soak message: tag carries the client id, the body leads with the
/// big-endian sequence number plus a size-varying filler tail.
Message soak_message(const Graph& g, std::uint16_t client, std::uint32_t seq) {
  Message msg(g);
  Bytes tag{static_cast<Byte>(client >> 8), static_cast<Byte>(client & 0xff)};
  Bytes body{static_cast<Byte>(seq >> 24), static_cast<Byte>(seq >> 16),
             static_cast<Byte>(seq >> 8), static_cast<Byte>(seq & 0xff)};
  body.resize(4 + seq % 13, static_cast<Byte>('x'));
  EXPECT_TRUE(msg.set("tag", std::move(tag)).ok());
  EXPECT_TRUE(msg.set("body", std::move(body)).ok());
  return msg;
}

std::uint16_t tag_of(const Graph& g, const Inst& root) {
  const Inst* tag = ast::find_path(g, root, "msg.tag");
  if (tag == nullptr || tag->value.size() != 2) return 0xffff;
  return static_cast<std::uint16_t>((tag->value[0] << 8) | tag->value[1]);
}

std::uint32_t seq_of(const Graph& g, const Inst& root) {
  const Inst* body = ast::find_path(g, root, "msg.body");
  if (body == nullptr || body->value.size() < 4) return 0;
  return (static_cast<std::uint32_t>(body->value[0]) << 24) |
         (static_cast<std::uint32_t>(body->value[1]) << 16) |
         (static_cast<std::uint32_t>(body->value[2]) << 8) |
         static_cast<std::uint32_t>(body->value[3]);
}

/// Per-client bookkeeping, written only from that client's loop thread;
/// atomics because the main thread polls for completion.
struct ClientState {
  std::unique_ptr<ReliableClient> client;
  std::atomic<std::uint64_t> acked{0};
  std::atomic<bool> gave_up{false};
  std::atomic<bool> saw_malformed{false};
};

TEST(Soak, FaultScheduleLosesNothing) {
  const auto conns = static_cast<std::size_t>(env_u64("SOAK_CONNS", 48));
  const auto msgs = static_cast<std::uint32_t>(env_u64("SOAK_MSGS", 16));
  const std::uint64_t seed = env_u64("SOAK_SEED", 42);
  const bool faults = env_u64("SOAK_FAULTS", 1) != 0;
  const auto timeout = std::chrono::milliseconds(
      env_u64("SOAK_TIMEOUT_MS", 30000 + 25 * conns * (faults ? 2 : 1)));
  // The reproduction recipe: a failing run is replayed by exporting this.
  std::printf("[soak] SOAK_CONNS=%zu SOAK_MSGS=%u SOAK_SEED=%llu\n", conns,
              msgs, static_cast<unsigned long long>(seed));

  // The metrics registry is process-global; zero it so the consistency
  // checks below count only this run's traffic.
  obs::MetricsRegistry::global().reset_values();

  auto g = Framework::load_spec(kSpec).value();
  ProtocolCache cache;
  ObfuscationConfig ocfg;
  ocfg.seed = 7;
  ocfg.per_node = 2;
  auto protocol = cache.get_or_compile(kSpec, ocfg);
  ASSERT_TRUE(protocol.ok()) << protocol.error().message;

  // Two injectors (separate stats), one seed: kills scheduled on either
  // side of the wire, replayable together.
  FaultPlan plan;
  plan.seed = seed;
  if (faults) {
    plan.short_read = 0.2;
    plan.short_write = 0.2;
    plan.eagain = 0.1;
    plan.kill_rate = 0.4;
    plan.kill_window_bytes = 2048;
    plan.refuse_every = 5;
  }
  FaultInjector server_faults(plan);
  FaultPlan client_plan = plan;
  client_plan.seed = seed ^ 0x9e3779b97f4a7c15ull;
  FaultInjector client_faults(client_plan);

  // Server: sharded echo with dedup bookkeeping. seen[i] is the set of
  // sequence numbers client i has proven delivered; duplicates (resends
  // whose first copy did land) are counted, not failed — at-least-once
  // promises no holes, not no repeats. Every receipt is (re-)echoed so the
  // client can always make progress.
  std::mutex seen_mu;
  std::vector<std::set<std::uint32_t>> seen(conns);
  std::atomic<std::uint64_t> wire_duplicates{0};
  std::atomic<bool> server_saw_malformed{false};

  Server::Config scfg;
  scfg.shards = 4;
  scfg.max_connections = conns + 64;
  if (faults) scfg.connection.ops = &server_faults;
  scfg.connection.drain_timeout = std::chrono::milliseconds(2000);
  Server server(*protocol, length_prefix_framer_factory(), scfg);
  server.on_accept([&](Connection& conn) {
    conn.on_message([&](Connection& c, Expected<InstPtr> msg) {
      if (!msg.ok()) {
        if (msg.error().kind == ErrorKind::Malformed) {
          server_saw_malformed.store(true);
        }
        return;
      }
      const std::uint16_t client = tag_of(g, **msg);
      const std::uint32_t seq = seq_of(g, **msg);
      if (client < conns && seq != 0) {
        std::lock_guard<std::mutex> lock(seen_mu);
        if (!seen[client].insert(seq).second) wire_duplicates.fetch_add(1);
      }
      (void)c.send(**msg, c.stats().messages_in);
    });
    conn.on_close([&](Connection&, const Error* err) {
      if (err != nullptr && err->kind == ErrorKind::Malformed) {
        server_saw_malformed.store(true);
      }
    });
  });
  ASSERT_TRUE(server.start().ok());
  const Endpoint ep{"127.0.0.1", server.port()};

  // Clients: spread across a few loops, each client sending its full
  // window up front — everything unacked rides through every reconnect.
  const std::size_t n_loops = conns < 4 ? conns : 4;
  std::vector<std::unique_ptr<EventLoop>> loops;
  for (std::size_t i = 0; i < n_loops; ++i) {
    loops.push_back(std::make_unique<EventLoop>());
  }
  std::vector<ClientState> clients(conns);
  for (std::size_t i = 0; i < conns; ++i) {
    EventLoop& loop = *loops[i % n_loops];
    ReliableClient::Config ccfg;
    ccfg.endpoint = ep;
    ccfg.framer_factory = length_prefix_framer_factory();
    if (faults) ccfg.connection.ops = &client_faults;
    ccfg.backoff.initial = std::chrono::milliseconds(5);
    ccfg.backoff.cap = std::chrono::milliseconds(100);
    ccfg.max_unacked = msgs;
    ccfg.seed = seed + i;
    ClientState& state = clients[i];
    state.client = std::make_unique<ReliableClient>(loop, *protocol, ccfg);
    state.client->on_message([&state, &g](Expected<InstPtr> msg) {
      if (!msg.ok()) {
        if (msg.error().kind == ErrorKind::Malformed) {
          state.saw_malformed.store(true);
        }
        return;
      }
      state.client->ack(seq_of(g, **msg));
      state.acked.store(state.client->stats().acked);
    });
    state.client->on_gave_up(
        [&state](const Error&) { state.gave_up.store(true); });
  }

  std::vector<std::thread> threads;
  for (auto& loop : loops) {
    threads.emplace_back([&loop] { loop->run(); });
  }
  for (std::size_t i = 0; i < conns; ++i) {
    ClientState& state = clients[i];
    EventLoop& loop = *loops[i % n_loops];
    const auto id = static_cast<std::uint16_t>(i);
    loop.post([&state, &g, proto = *protocol, id, msgs] {
      state.client->start();
      for (std::uint32_t seq = 1; seq <= msgs; ++seq) {
        Message msg = soak_message(g, id, seq);
        ASSERT_TRUE(proto->canonicalize(msg.root()).ok());
        ASSERT_TRUE(state.client->send(msg.root()).ok());
      }
    });
  }

  // Completion: every client confirmed its whole window (or gave up, which
  // fails below with the seed printed above for replay).
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  auto done = [&] {
    for (const ClientState& state : clients) {
      if (state.gave_up.load()) return true;  // fail fast
      if (state.acked.load() < msgs) return false;
    }
    return true;
  };
  while (!done() && std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }

  for (std::size_t i = 0; i < conns; ++i) {
    EXPECT_FALSE(clients[i].gave_up.load()) << "client " << i << " gave up";
    EXPECT_EQ(clients[i].acked.load(), msgs) << "client " << i;
    EXPECT_FALSE(clients[i].saw_malformed.load()) << "client " << i;
  }

  // Zero loss server-side: each client's dedup'd set is exactly 1..msgs.
  {
    std::lock_guard<std::mutex> lock(seen_mu);
    for (std::size_t i = 0; i < conns; ++i) {
      ASSERT_EQ(seen[i].size(), msgs) << "client " << i << " lost messages";
      EXPECT_EQ(*seen[i].begin(), 1u);
      EXPECT_EQ(*seen[i].rbegin(), msgs);
    }
  }
  EXPECT_FALSE(server_saw_malformed.load())
      << "a transport fault surfaced as Malformed";

  // Memory back to baseline: shrink every survivor's arena on its loop
  // thread and observe zero retained bytes.
  std::atomic<std::size_t> retained{0};
  std::atomic<std::size_t> shrunk{0};
  for (std::size_t i = 0; i < conns; ++i) {
    EventLoop& loop = *loops[i % n_loops];
    ClientState& state = clients[i];
    loop.post([&state, &retained, &shrunk] {
      if (Connection* conn = state.client->connection()) {
        conn->session().arena().shrink();
        retained.fetch_add(conn->session().arena().retained());
      }
      state.client->stop();
      shrunk.fetch_add(1);
    });
  }
  const auto stop_deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (shrunk.load() < conns &&
         std::chrono::steady_clock::now() < stop_deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  EXPECT_EQ(shrunk.load(), conns);
  EXPECT_EQ(retained.load(), 0u) << "arenas held memory after shrink";

  // Graceful drain: listeners close, queues flush, nothing stays active.
  server.drain(std::chrono::milliseconds(5000));
  const Server::Stats sstats = server.stats();
  EXPECT_EQ(sstats.active, 0u);

  for (auto& loop : loops) loop->stop();
  for (auto& thread : threads) thread.join();
  // Clients destroyed here, after their loops stopped.
  clients.clear();

  // Metrics consistency (ISSUE 9): the registry's view of the run must
  // agree with the test's own ground-truth bookkeeping.
  //
  // Server-side parsed messages == receipts the handler saw: every client's
  // dedup'd window plus the wire duplicates. At-least-once means resends
  // can repeat on the wire, but the counter and the handler must agree
  // exactly — a gap either way is a lost or phantom message.
  EXPECT_EQ(obs::NetMetrics::sum(
                [](obs::NetMetrics& m) -> obs::Counter& {
                  return m.messages_in;
                },
                /*include_client=*/false),
            static_cast<std::uint64_t>(conns) * msgs +
                wire_duplicates.load());
  // Client-side confirmed sends: the acked counter is the sum of every
  // client's confirmed window.
  EXPECT_EQ(obs::ReconnectMetrics::get().acked.value(),
            static_cast<std::uint64_t>(conns) * msgs);
  EXPECT_EQ(obs::ReconnectMetrics::get().unacked.value(), 0);
  // Occupancy returns to zero once the drain finished and every client
  // connection was destroyed — leaks show up as a stuck gauge.
  EXPECT_EQ(
      obs::NetMetrics::sum(
          [](obs::NetMetrics& m) -> obs::Gauge& { return m.active; },
          /*include_client=*/true),
      0);
  // The close-taxonomy view of "no transport fault surfaces as Malformed".
  EXPECT_EQ(obs::NetMetrics::sum(
                [](obs::NetMetrics& m) -> obs::Counter& {
                  return m.close_malformed;
                },
                /*include_client=*/true),
            0u);

  if (faults) {
    const FaultInjector::Stats sf = server_faults.stats();
    const FaultInjector::Stats cf = client_faults.stats();
    // Injected-fault counters mirror the injectors one-for-one: both
    // injectors feed the same labeled registry family, so each kind must
    // equal the sum of the two tallies.
    const obs::FaultMetrics& fm = obs::FaultMetrics::get();
    EXPECT_EQ(fm.short_reads.value(), sf.short_reads + cf.short_reads);
    EXPECT_EQ(fm.short_writes.value(), sf.short_writes + cf.short_writes);
    EXPECT_EQ(fm.eagains.value(), sf.eagains + cf.eagains);
    EXPECT_EQ(fm.resets.value(), sf.resets + cf.resets);
    EXPECT_EQ(fm.epipes.value(), sf.epipes + cf.epipes);
    EXPECT_EQ(fm.fins.value(), sf.fins + cf.fins);
    EXPECT_EQ(fm.refused.value(), sf.refused + cf.refused);
    EXPECT_EQ(fm.connections.value(), sf.connections + cf.connections);
    std::printf(
        "[soak] faults: kills=%llu (server %llu / client %llu) "
        "short_r=%llu short_w=%llu eagain=%llu refused=%llu dup_wire=%llu\n",
        static_cast<unsigned long long>(server_faults.kills() +
                                        client_faults.kills()),
        static_cast<unsigned long long>(server_faults.kills()),
        static_cast<unsigned long long>(client_faults.kills()),
        static_cast<unsigned long long>(sf.short_reads + cf.short_reads),
        static_cast<unsigned long long>(sf.short_writes + cf.short_writes),
        static_cast<unsigned long long>(sf.eagains + cf.eagains),
        static_cast<unsigned long long>(cf.refused),
        static_cast<unsigned long long>(wire_duplicates.load()));
  }
}

}  // namespace
}  // namespace protoobf
