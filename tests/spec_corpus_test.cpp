// Parameterized corpus of invalid specifications: every rejection path of
// the lexer/parser/validator, each with the reason the diagnostic must
// mention. Complements spec_test.cpp's positive cases.
#include <gtest/gtest.h>

#include "spec/parser.hpp"

namespace protoobf {
namespace {

struct BadSpec {
  const char* name;
  const char* source;
  const char* expected_fragment;  // must appear in the error message
};

class SpecRejection : public ::testing::TestWithParam<BadSpec> {};

TEST_P(SpecRejection, IsRejectedWithDiagnostic) {
  const auto result = parse_spec(GetParam().source);
  ASSERT_FALSE(result.ok()) << "spec unexpectedly accepted";
  EXPECT_NE(result.error().message.find(GetParam().expected_fragment),
            std::string::npos)
      << "diagnostic was: " << result.error().message;
}

const BadSpec kCorpus[] = {
    {"MissingProtocolKeyword", "m: seq end { a: terminal fixed(1) }",
     "protocol"},
    {"MissingColon", "protocol P\nm seq end { a: terminal fixed(1) }",
     "':'"},
    {"UnknownNodeType", "protocol P\nm: record end { }", "node type"},
    {"UnterminatedBlock",
     "protocol P\nm: seq end { a: terminal fixed(1)", "identifier"},
    {"TrailingTokens",
     "protocol P\nm: seq end { a: terminal fixed(1) } extra", "end of input"},
    {"FixedWithoutSize", "protocol P\nm: seq end { a: terminal fixed }",
     "'('"},
    {"FixedSizeZero", "protocol P\nm: seq end { a: terminal fixed(0) }",
     "zero"},
    {"DelimitedEmpty",
     "protocol P\nm: seq end { a: terminal delimited(\"\") }", "empty"},
    {"TerminalWithoutBoundary", "protocol P\nm: seq end { a: terminal }",
     "boundary"},
    {"EmptySeq", "protocol P\nm: seq end { }", "at least one sub-node"},
    {"UnresolvedLengthRef",
     "protocol P\nm: seq end { a: terminal length(nothing) }", "unresolved"},
    {"ForwardLengthRef",
     "protocol P\nm: seq end { a: terminal length(l) l: terminal fixed(1) }",
     "parse order"},
    {"SelfLengthRef",
     "protocol P\nm: seq end { a: terminal length(a) }", "parse order"},
    {"AmbiguousRef",
     "protocol P\nm: seq end { x: seq { l: terminal fixed(1) } "
     "y: seq { l: terminal fixed(1) } b: terminal length(l) }",
     "ambiguous"},
    {"ConditionWithoutOperator",
     "protocol P\nm: seq end { k: terminal fixed(1) "
     "o: optional (k) { v: terminal fixed(1) } }",
     "condition"},
    {"ConditionForwardRef",
     "protocol P\nm: seq end { o: optional (k == 0x01) "
     "{ v: terminal fixed(1) } k: terminal fixed(1) }",
     "parse order"},
    {"TabularWithoutRef", "protocol P\nm: seq end { t: tabular { } }",
     "'('"},
    {"ConstSizeMismatch",
     "protocol P\nm: seq end { a: terminal fixed(3) const(0x01) }",
     "const"},
    {"BadEscape", "protocol P\nm: seq end { a: terminal delimited(\"\\q\") }",
     "escape"},
    {"OddHex", "protocol P\nm: seq end { a: terminal fixed(1) const(0x1) }",
     "even"},
    {"RefIntoRepetitionFromOutside",
     "protocol P\nm: seq end { r: repeat end { e: seq { "
     "il: terminal fixed(1) iv: terminal length(il) } } "
     "out: terminal length(il) }",
     "repeated element"},
};

std::string corpus_name(const ::testing::TestParamInfo<BadSpec>& info) {
  return info.param.name;
}

INSTANTIATE_TEST_SUITE_P(Corpus, SpecRejection, ::testing::ValuesIn(kCorpus),
                         corpus_name);

// A couple of things that must be ACCEPTED even though they look odd.
TEST(SpecAcceptance, KeywordsAreValidFieldNames) {
  // Keywords are contextual; "end" and "fixed" work as node names.
  constexpr std::string_view spec = R"(
protocol P
m: seq end {
  end: terminal fixed(1)
  fixed: terminal fixed(2)
}
)";
  EXPECT_TRUE(parse_spec(spec).ok());
}

TEST(SpecAcceptance, DeeplyNestedStructures) {
  constexpr std::string_view spec = R"(
protocol P
a: seq end { b: seq { c: seq { d: seq { e: seq {
  f: terminal fixed(1)
} } } } }
)";
  auto g = parse_spec(spec);
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g->depth(), 6u);
}

TEST(SpecAcceptance, CommentsEverywhere) {
  constexpr std::string_view spec = R"(
# leading comment
protocol P  # trailing comment
m: seq end {  # here too
  a: terminal fixed(1)  # and here
}
# closing comment
)";
  EXPECT_TRUE(parse_spec(spec).ok());
}

}  // namespace
}  // namespace protoobf
