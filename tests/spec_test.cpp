// Lexer/parser tests for the ProtoSpec specification language.
#include <gtest/gtest.h>

#include "spec/lexer.hpp"
#include "spec/parser.hpp"

namespace protoobf {
namespace {

TEST(Lexer, TokenizesPunctuationAndIdentifiers) {
  auto tokens = tokenize("adu: seq { x: terminal fixed(2) }");
  ASSERT_TRUE(tokens.ok());
  ASSERT_GE(tokens->size(), 10u);
  EXPECT_EQ((*tokens)[0].kind, TokenKind::Identifier);
  EXPECT_EQ((*tokens)[0].text, "adu");
  EXPECT_EQ((*tokens)[1].kind, TokenKind::Colon);
  EXPECT_EQ(tokens->back().kind, TokenKind::EndOfFile);
}

TEST(Lexer, StringEscapes) {
  auto tokens = tokenize(R"("a\r\n\t\0\\\"\x41")");
  ASSERT_TRUE(tokens.ok());
  const Bytes expected{'a', '\r', '\n', '\t', '\0', '\\', '"', 'A'};
  EXPECT_EQ((*tokens)[0].bytes, expected);
}

TEST(Lexer, HexLiteral) {
  auto tokens = tokenize("0x00FF");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[0].kind, TokenKind::HexBytes);
  EXPECT_EQ((*tokens)[0].bytes, (Bytes{0x00, 0xff}));
}

TEST(Lexer, RejectsOddHexDigits) {
  EXPECT_FALSE(tokenize("0xABC").ok());
}

TEST(Lexer, CommentsAreSkipped) {
  auto tokens = tokenize("# a comment\nx");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[0].text, "x");
  EXPECT_EQ((*tokens)[0].line, 2u);
}

TEST(Lexer, TracksLineAndColumn) {
  auto tokens = tokenize("a\n  b");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[1].line, 2u);
  EXPECT_EQ((*tokens)[1].column, 3u);
}

TEST(Lexer, RejectsUnterminatedString) {
  EXPECT_FALSE(tokenize("\"abc").ok());
}

TEST(Lexer, RejectsLoneEquals) {
  const auto result = tokenize("a = b");
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.error().message.find("'='"), std::string::npos);
}

// ---------------------------------------------------------------------------

constexpr std::string_view kTinySpec = R"(
protocol Tiny
msg: seq end {
  kind: terminal fixed(1)
  len: terminal fixed(2)
  payload: terminal length(len)
}
)";

TEST(SpecParser, ParsesTinySpec) {
  auto graph = parse_spec(kTinySpec);
  ASSERT_TRUE(graph.ok()) << graph.error().message;
  EXPECT_EQ(graph->protocol_name(), "Tiny");
  EXPECT_EQ(graph->size(), 4u);
  const Node& root = graph->node(graph->root());
  EXPECT_EQ(root.type, NodeType::Sequence);
  EXPECT_EQ(root.boundary, BoundaryKind::End);
  ASSERT_EQ(root.children.size(), 3u);

  const auto payload = graph->find_by_name("payload");
  ASSERT_TRUE(payload.has_value());
  const Node& p = graph->node(*payload);
  EXPECT_EQ(p.boundary, BoundaryKind::Length);
  EXPECT_EQ(graph->node(p.ref).name, "len");
}

TEST(SpecParser, ResolvesDottedAndSuffixReferences) {
  constexpr std::string_view spec = R"(
protocol P
m: seq end {
  hdr: seq {
    len: terminal fixed(2)
  }
  body: terminal length(m.hdr.len)
}
)";
  auto graph = parse_spec(spec);
  ASSERT_TRUE(graph.ok()) << graph.error().message;
  const Node& body = graph->node(graph->find_by_name("body").value());
  EXPECT_EQ(graph->node(body.ref).name, "len");
}

TEST(SpecParser, RejectsUnresolvedReference) {
  constexpr std::string_view spec = R"(
protocol P
m: seq end {
  body: terminal length(nosuch)
}
)";
  const auto result = parse_spec(spec);
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.error().message.find("unresolved"), std::string::npos);
}

TEST(SpecParser, RejectsForwardLengthReference) {
  // The length holder must precede its dependant in parse order.
  constexpr std::string_view spec = R"(
protocol P
m: seq end {
  body: terminal length(len)
  len: terminal fixed(2)
}
)";
  EXPECT_FALSE(parse_spec(spec).ok());
}

TEST(SpecParser, ParsesOptionalWithConditions) {
  constexpr std::string_view spec = R"(
protocol P
m: seq end {
  kind: terminal fixed(1)
  a: optional (kind == 0x01) { av: terminal fixed(2) }
  b: optional (kind in {0x02, 0x03}) { bv: terminal fixed(2) }
  c: optional (kind nonzero) { cv: terminal end }
}
)";
  auto graph = parse_spec(spec);
  ASSERT_TRUE(graph.ok()) << graph.error().message;
  const Node& a = graph->node(graph->find_by_name("a").value());
  EXPECT_EQ(a.condition.kind, Condition::Kind::Equals);
  EXPECT_EQ(a.condition.values[0], (Bytes{0x01}));
  const Node& b = graph->node(graph->find_by_name("b").value());
  EXPECT_EQ(b.condition.kind, Condition::Kind::OneOf);
  EXPECT_EQ(b.condition.values.size(), 2u);
  const Node& c = graph->node(graph->find_by_name("c").value());
  EXPECT_EQ(c.condition.kind, Condition::Kind::NonZero);
}

TEST(SpecParser, ParsesRepetitionAndTabular) {
  constexpr std::string_view spec = R"(
protocol P
m: seq end {
  count: terminal fixed(1)
  items: tabular(count) { item: terminal fixed(2) }
  lines: repeat delimited("\r\n") {
    line: terminal delimited("\r\n") ascii
  }
}
)";
  auto graph = parse_spec(spec);
  ASSERT_TRUE(graph.ok()) << graph.error().message;
  const Node& items = graph->node(graph->find_by_name("items").value());
  EXPECT_EQ(items.type, NodeType::Tabular);
  EXPECT_EQ(items.boundary, BoundaryKind::Counter);
  EXPECT_EQ(graph->node(items.ref).name, "count");
  const Node& lines = graph->node(graph->find_by_name("lines").value());
  EXPECT_EQ(lines.type, NodeType::Repetition);
  EXPECT_EQ(lines.delimiter, to_bytes("\r\n"));
}

TEST(SpecParser, ParsesConstAndEncoding) {
  constexpr std::string_view spec = R"(
protocol P
m: seq end {
  magic: terminal fixed(2) const(0x0102)
  count: terminal delimited(";") ascii
  data: terminal end binary
}
)";
  auto graph = parse_spec(spec);
  ASSERT_TRUE(graph.ok()) << graph.error().message;
  const Node& magic = graph->node(graph->find_by_name("magic").value());
  EXPECT_TRUE(magic.has_const);
  EXPECT_EQ(magic.const_value, (Bytes{0x01, 0x02}));
  const Node& count = graph->node(graph->find_by_name("count").value());
  EXPECT_EQ(count.encoding, Encoding::AsciiDec);
}

TEST(SpecParser, RejectsConstSizeMismatch) {
  constexpr std::string_view spec = R"(
protocol P
m: seq end { magic: terminal fixed(2) const(0x01) }
)";
  EXPECT_FALSE(parse_spec(spec).ok());
}

TEST(SpecParser, RejectsEmptySequence) {
  EXPECT_FALSE(parse_spec("protocol P\nm: seq end { }").ok());
}

TEST(SpecParser, RejectsMissingBoundaryOnTerminal) {
  EXPECT_FALSE(parse_spec("protocol P\nm: terminal").ok());
}

TEST(SpecParser, ErrorsCarrySourcePosition) {
  const auto result = parse_spec("protocol P\nm: seq end { x: bogus }");
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.error().message.find("spec:2"), std::string::npos);
}

TEST(SpecParser, AmbiguousReferenceIsRejected) {
  constexpr std::string_view spec = R"(
protocol P
m: seq end {
  a: seq { len: terminal fixed(2) }
  b: seq { len: terminal fixed(2) }
  body: terminal length(len)
}
)";
  const auto result = parse_spec(spec);
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.error().message.find("ambiguous"), std::string::npos);
}

}  // namespace
}  // namespace protoobf
