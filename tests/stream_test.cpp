// Streaming API tests: framers, reassembly, the Channel endpoint, and the
// truncated-vs-malformed error taxonomy underneath them.
//
// The load-bearing property (ISSUE 2 acceptance): for random messages,
// seeds, and random chunk partitions of a concatenated wire stream, every
// message parses back equal to its canonical form through both framers —
// and a merely-truncated buffer is *never* reported as a parse error, only
// as need-more-bytes.
#include <gtest/gtest.h>

#include <memory>

#include "protocols/http.hpp"
#include "protocols/modbus.hpp"
#include "runtime/parse.hpp"
#include "session/protocol_cache.hpp"
#include "stream/channel.hpp"

namespace protoobf {
namespace {

constexpr std::string_view kFrameSpec = R"(
protocol Frame
frame: seq end {
  flen: terminal fixed(4)
  fbody: terminal length(flen)
}
)";

// Delimiter-bounded frame format: no length field at all, so the decode
// cost under trickled delivery is carried entirely by the resumable prefix
// parse (ISSUE 5) — these tests pin its accounting.
constexpr std::string_view kDelimFrameSpec = R"(
protocol DelimFrame
frame: seq end {
  fbody: terminal delimited("\r\n") ascii
}
)";

ObfuscationConfig config_of(std::uint64_t seed, int per_node) {
  ObfuscationConfig cfg;
  cfg.seed = seed;
  cfg.per_node = per_node;
  return cfg;
}

std::shared_ptr<const ObfuscatedProtocol> compile(std::string_view spec,
                                                  std::uint64_t seed,
                                                  int per_node) {
  ProtocolCache cache;
  auto entry = cache.get_or_compile(spec, config_of(seed, per_node));
  EXPECT_TRUE(entry.ok()) << entry.error().message;
  return *entry;
}

/// First frame-spec compilation at or after `seed` that ObfuscatedFramer
/// accepts (not every seed yields a stream-safe wire format).
std::shared_ptr<const ObfuscatedProtocol> stream_safe_framing(
    std::uint64_t seed, int per_node) {
  ProtocolCache cache;
  for (std::uint64_t s = seed; s < seed + 64; ++s) {
    auto entry = cache.get_or_compile(kFrameSpec, config_of(s, per_node));
    if (!entry.ok()) continue;
    if (stream_safe((*entry)->wire_graph()).ok()) return *entry;
  }
  ADD_FAILURE() << "no stream-safe frame compilation in 64 seeds";
  return nullptr;
}

// --- error taxonomy ---------------------------------------------------------

TEST(ParseTaxonomy, TruncatedInputIsClassifiedTruncated) {
  // Classification is guaranteed for stream-safe wire layouts — the class
  // ObfuscatedFramer admits. (On a layout that reads "to the end of the
  // input" a truncation is indistinguishable from a short message, which is
  // exactly why stream_safe() gates the framer.)
  auto protocol = stream_safe_framing(20, 2);
  ASSERT_NE(protocol, nullptr);
  auto g = Framework::load_spec(kFrameSpec).value();
  Message frame(g);
  frame.set("fbody", to_bytes("a realistic sized frame payload"));
  const Bytes wire = protocol->serialize(frame.root(), 7).value();

  // Every proper prefix is merely truncated: more bytes could complete it.
  for (std::size_t keep = 0; keep < wire.size(); ++keep) {
    auto parsed = protocol->parse_prefix(BytesView(wire).first(keep), nullptr);
    ASSERT_FALSE(parsed.ok()) << "prefix of " << keep << " parsed";
    EXPECT_TRUE(parsed.error().truncated())
        << "prefix " << keep << "/" << wire.size() << " reported malformed: "
        << parsed.error().message;
    EXPECT_GE(parsed.error().need, 1u);
  }
}

TEST(ParseTaxonomy, WholeMessageParseAlsoClassifiesTruncation) {
  auto protocol = stream_safe_framing(50, 2);
  ASSERT_NE(protocol, nullptr);
  auto g = Framework::load_spec(kFrameSpec).value();
  Message frame(g);
  frame.set("fbody", to_bytes("whole message classification"));
  const Bytes wire = protocol->serialize(frame.root(), 8).value();

  auto parsed = protocol->parse(BytesView(wire).first(wire.size() / 2));
  ASSERT_FALSE(parsed.ok());
  EXPECT_TRUE(parsed.error().truncated()) << parsed.error().message;

  // Trailing garbage after a complete message is malformed, not truncated.
  Bytes extended = wire;
  extended.push_back(0xee);
  auto trailing = protocol->parse(extended);
  ASSERT_FALSE(trailing.ok());
  EXPECT_FALSE(trailing.error().truncated()) << trailing.error().message;
}

TEST(ParseTaxonomy, PrefixParseReportsConsumedAndToleratesTrailing) {
  auto protocol = compile(kFrameSpec, 1, 0);  // identity framing
  auto g = Framework::load_spec(kFrameSpec).value();
  Message frame(g);
  frame.set("fbody", to_bytes("payload"));
  const Bytes wire = protocol->serialize(frame.root(), 1).value();

  Bytes stream = wire;
  append(stream, to_bytes("NEXTFRAME..."));
  std::size_t consumed = 0;
  auto parsed = protocol->parse_prefix(stream, &consumed);
  ASSERT_TRUE(parsed.ok()) << parsed.error().message;
  EXPECT_EQ(consumed, wire.size());
  auto whole = protocol->parse(wire);
  ASSERT_TRUE(whole.ok());
  EXPECT_TRUE(ast::equal(**parsed, **whole));
}

TEST(ParseTaxonomy, StreamSafeRejectsEndBoundedPayload) {
  // A frame whose payload runs "to the end" cannot delimit itself.
  constexpr std::string_view kGreedy = R"(
protocol Greedy
frame: seq end {
  tag: terminal fixed(1)
  rest: terminal end
}
)";
  auto protocol = compile(kGreedy, 1, 0);
  EXPECT_FALSE(stream_safe(protocol->wire_graph()).ok());
  auto framer = ObfuscatedFramer::create(protocol);
  ASSERT_FALSE(framer.ok());
  EXPECT_NE(framer.error().message.find("not stream-safe"),
            std::string::npos);
}

// --- LengthPrefixFramer -----------------------------------------------------

TEST(LengthPrefixFramer, RoundTripsAcrossWidthsAndEndianness) {
  for (const std::size_t width : {1u, 2u, 4u, 8u}) {
    for (const bool little : {false, true}) {
      LengthPrefixFramer::Config cfg;
      cfg.width = width;
      cfg.little_endian = little;
      LengthPrefixFramer framer(cfg);
      const Bytes payload = to_bytes("sixteen byte msg");
      Bytes framed;
      ASSERT_TRUE(framer.encode(payload, framed).ok());
      ASSERT_EQ(framed.size(), width + payload.size());
      const FrameDecode d = framer.decode(framed);
      ASSERT_EQ(d.kind, FrameDecode::Kind::Frame);
      EXPECT_EQ(d.consumed, framed.size());
      EXPECT_EQ(Bytes(d.payload.begin(), d.payload.end()), payload);
    }
  }
}

TEST(LengthPrefixFramer, NeedMoreAtEverySplitIncludingThePrefix) {
  LengthPrefixFramer framer;
  const Bytes payload = to_bytes("hello stream");
  Bytes framed;
  ASSERT_TRUE(framer.encode(payload, framed).ok());
  // Every proper prefix — including cuts *inside* the 4-byte length field —
  // must answer NeedMore with an exact byte count, never an error.
  for (std::size_t cut = 0; cut < framed.size(); ++cut) {
    const FrameDecode d = framer.decode(BytesView(framed).first(cut));
    ASSERT_EQ(d.kind, FrameDecode::Kind::NeedMore) << "cut " << cut;
    EXPECT_EQ(d.need, cut < 4 ? 4 - cut : framed.size() - cut)
        << "cut " << cut;
  }
}

TEST(LengthPrefixFramer, RejectsOversizedLength) {
  LengthPrefixFramer::Config cfg;
  cfg.width = 4;
  cfg.max_frame_size = 1024;
  LengthPrefixFramer framer(cfg);

  Bytes big(5000, 0x61);
  Bytes framed;
  EXPECT_FALSE(framer.encode(big, framed).ok());

  const Bytes hostile = {0x7f, 0xff, 0xff, 0xff, 0x00};
  const FrameDecode d = framer.decode(hostile);
  ASSERT_EQ(d.kind, FrameDecode::Kind::Error);
  EXPECT_NE(d.error.message.find("max_frame_size"), std::string::npos);
}

TEST(LengthPrefixFramer, HostilePrefixWithGuardDisabledDoesNotOverflow) {
  // width 8, guard off, prefix 0xff..ff: `width + length` would wrap to a
  // tiny in-bounds total and read out of bounds. Must answer NeedMore.
  LengthPrefixFramer::Config cfg;
  cfg.width = 8;
  cfg.max_frame_size = 0;  // guard explicitly disabled
  LengthPrefixFramer framer(cfg);
  Bytes hostile(16, 0xff);
  const FrameDecode d = framer.decode(hostile);
  ASSERT_EQ(d.kind, FrameDecode::Kind::NeedMore);
  EXPECT_GE(d.need, 1u);
}

TEST(StreamReader, OneByteDeliveryAndPrefixSplitBoundaries) {
  LengthPrefixFramer framer;
  StreamReader reader(framer);
  const Bytes a = to_bytes("alpha");
  const Bytes b = to_bytes("bee");
  Bytes stream;
  Bytes framed;
  ASSERT_TRUE(framer.encode(a, framed).ok());
  append(stream, framed);
  ASSERT_TRUE(framer.encode(b, framed).ok());
  append(stream, framed);

  std::vector<Bytes> got;
  for (std::size_t i = 0; i < stream.size(); ++i) {
    reader.feed(BytesView(stream).subspan(i, 1));
    while (auto frame = reader.next_frame()) {
      got.emplace_back(frame->begin(), frame->end());
    }
    ASSERT_FALSE(reader.failed()) << "byte " << i;
  }
  ASSERT_EQ(got.size(), 2u);
  EXPECT_EQ(got[0], a);
  EXPECT_EQ(got[1], b);
  EXPECT_EQ(reader.buffered(), 0u);
}

TEST(StreamReader, SplitExactlyAtTheLengthPrefix) {
  LengthPrefixFramer framer;
  StreamReader reader(framer);
  const Bytes payload = to_bytes("boundary");
  Bytes framed;
  ASSERT_TRUE(framer.encode(payload, framed).ok());

  // Deliver exactly the prefix, then exactly the body.
  reader.feed(BytesView(framed).first(4));
  EXPECT_FALSE(reader.next_frame().has_value());
  EXPECT_EQ(reader.need_bytes(), payload.size());
  reader.feed(BytesView(framed).subspan(4));
  auto frame = reader.next_frame();
  ASSERT_TRUE(frame.has_value());
  EXPECT_EQ(Bytes(frame->begin(), frame->end()), payload);
}

TEST(StreamReader, GarbagePrefixResyncsToTheNextFrame) {
  LengthPrefixFramer::Config cfg;
  cfg.max_frame_size = 4096;
  LengthPrefixFramer framer(cfg);
  StreamReader reader(framer);

  // Six bytes of 0xff decode as an over-limit length no matter where the
  // scan starts, so each resync() skips exactly one garbage byte.
  Bytes stream(6, 0xff);
  const Bytes payload = to_bytes("found me");
  Bytes framed;
  ASSERT_TRUE(framer.encode(payload, framed).ok());
  append(stream, framed);
  reader.feed(stream);

  int resyncs = 0;
  std::optional<BytesView> frame;
  while (!(frame = reader.next_frame()).has_value()) {
    ASSERT_TRUE(reader.failed());
    reader.resync();
    ASSERT_LT(++resyncs, 32);
  }
  EXPECT_EQ(resyncs, 6);
  EXPECT_EQ(Bytes(frame->begin(), frame->end()), payload);
}

// --- ObfuscatedFramer -------------------------------------------------------

TEST(ObfuscatedFramer, RoundTripsAndNeverErrorsOnTruncation) {
  auto framing = stream_safe_framing(20, 2);
  ASSERT_NE(framing, nullptr);
  auto framer = ObfuscatedFramer::create(framing).value();

  const Bytes payload = to_bytes("opaque boundary payload");
  Bytes framed;
  ASSERT_TRUE(framer->encode(payload, framed).ok());

  // Acceptance: merely-truncated buffers answer NeedMore, never Error.
  for (std::size_t cut = 0; cut < framed.size(); ++cut) {
    const FrameDecode d = framer->decode(BytesView(framed).first(cut));
    ASSERT_EQ(d.kind, FrameDecode::Kind::NeedMore)
        << "cut " << cut << "/" << framed.size() << ": "
        << (d.kind == FrameDecode::Kind::Error ? d.error.message : "");
    EXPECT_GE(d.need, 1u);
  }
  const FrameDecode d = framer->decode(framed);
  ASSERT_EQ(d.kind, FrameDecode::Kind::Frame);
  EXPECT_EQ(d.consumed, framed.size());
  EXPECT_EQ(Bytes(d.payload.begin(), d.payload.end()), payload);
}

TEST(ObfuscatedFramer, EnforcesMaxFrameSizeBeforeStalling) {
  auto framing = stream_safe_framing(20, 2);
  ASSERT_NE(framing, nullptr);
  ObfuscatedFramer::Config cfg;
  cfg.max_frame_size = 256;
  auto framer = ObfuscatedFramer::create(framing, cfg).value();

  Bytes big(1024, 0x42);
  Bytes framed;
  EXPECT_FALSE(framer->encode(big, framed).ok());

  // A frame that legitimately fits must still round-trip under the cap.
  const Bytes small(64, 0x42);
  ASSERT_TRUE(framer->encode(small, framed).ok());
  const FrameDecode d = framer->decode(framed);
  ASSERT_EQ(d.kind, FrameDecode::Kind::Frame);
  EXPECT_EQ(Bytes(d.payload.begin(), d.payload.end()), small);
}

// --- min-need floor ---------------------------------------------------------

/// Pass-through decorator counting decode() attempts, to pin how often the
/// reader actually consults the framer under fine-grained delivery.
class CountingFramer final : public Framer {
 public:
  explicit CountingFramer(Framer& inner) : inner_(inner) {}
  Status encode(BytesView payload, Bytes& out) override {
    return inner_.encode(payload, out);
  }
  FrameDecode decode(BytesView buffer) override {
    ++decodes;
    return inner_.decode(buffer);
  }
  bool payload_aliases_buffer() const override {
    return inner_.payload_aliases_buffer();
  }
  std::size_t min_need() const override { return inner_.min_need(); }
  void invalidate_decode_state() override {
    inner_.invalidate_decode_state();
  }

  Framer& inner_;
  int decodes = 0;
};

TEST(MinNeed, LengthPrefixReaderDecodesTwicePerFrameUnderByteDelivery) {
  LengthPrefixFramer framer;
  EXPECT_EQ(framer.min_need(), 4u);
  CountingFramer counting(framer);
  StreamReader reader(counting);
  EXPECT_EQ(reader.min_need(), 4u);

  const Bytes payload = to_bytes("one decode at the prefix, one at the end");
  Bytes framed;
  ASSERT_TRUE(framer.encode(payload, framed).ok());

  std::size_t frames = 0;
  for (std::size_t i = 0; i < framed.size(); ++i) {
    reader.feed(BytesView(framed).subspan(i, 1));
    while (reader.next_frame()) ++frames;
  }
  EXPECT_EQ(frames, 1u);
  // Exactly one attempt once the prefix is complete (yielding the exact
  // body need) and one once the body is: the min-need floor plus exact
  // hints mean byte-at-a-time delivery never triggers per-byte decodes.
  EXPECT_EQ(counting.decodes, 2);
}

TEST(MinNeed, ObfuscatedFramerFloorsAtTheFrameHeaderSize) {
  auto framing = stream_safe_framing(20, 2);
  ASSERT_NE(framing, nullptr);
  auto framer = ObfuscatedFramer::create(framing).value();

  // The static floor is the mandatory wire size of the frame protocol —
  // a length-driven frame spec always has a multi-byte header.
  const std::size_t floor = min_wire_size(framing->wire_graph());
  EXPECT_EQ(framer->min_need(), std::max<std::size_t>(1, floor));
  EXPECT_GT(framer->min_need(), 1u);

  // Below the floor the framer answers the exact shortfall without a
  // prefix-parse attempt.
  const FrameDecode empty = framer->decode(BytesView());
  ASSERT_EQ(empty.kind, FrameDecode::Kind::NeedMore);
  EXPECT_EQ(empty.need, framer->min_need());

  CountingFramer counting(*framer);
  StreamReader reader(counting);

  const Bytes payload = to_bytes("the header is length-driven");
  Bytes framed;
  ASSERT_TRUE(framer->encode(payload, framed).ok());

  std::size_t frames = 0;
  for (std::size_t i = 0; i < framed.size(); ++i) {
    reader.feed(BytesView(framed).subspan(i, 1));
    while (auto f = reader.next_frame()) {
      EXPECT_EQ(Bytes(f->begin(), f->end()), payload);
      ++frames;
    }
    ASSERT_FALSE(reader.failed()) << reader.error().message;
  }
  EXPECT_EQ(frames, 1u);
  // One decode attempt per sequentially discovered region of the frame
  // header, not one per delivered byte: far below the frame size.
  EXPECT_LE(counting.decodes, 8);
  EXPECT_LT(static_cast<std::size_t>(counting.decodes), framed.size() / 2);
}

// --- resumable decode (delimiter-bounded frame specs) -----------------------

std::unique_ptr<ObfuscatedFramer> delim_framer(
    std::shared_ptr<const ObfuscatedProtocol> framing,
    bool resumable = true) {
  ObfuscatedFramer::Config cfg;
  cfg.payload_path = "fbody";
  cfg.resumable_decode = resumable;
  auto framer = ObfuscatedFramer::create(std::move(framing), cfg);
  EXPECT_TRUE(framer.ok()) << framer.error().message;
  return std::move(*framer);
}

TEST(ResumableDecode, DelimiterFramerTrickleIsLinearNotQuadratic) {
  auto framing = compile(kDelimFrameSpec, 1, 0);
  auto framer = delim_framer(framing);
  CountingFramer counting(*framer);
  StreamReader reader(counting);

  const Bytes payload = to_bytes(std::string(600, 'x'));
  Bytes framed;
  ASSERT_TRUE(framer->encode(payload, framed).ok());

  std::size_t frames = 0;
  for (std::size_t i = 0; i < framed.size(); ++i) {
    reader.feed(BytesView(framed).subspan(i, 1));
    while (auto f = reader.next_frame()) {
      EXPECT_EQ(Bytes(f->begin(), f->end()), payload);
      ++frames;
    }
    ASSERT_FALSE(reader.failed()) << reader.error().message;
  }
  ASSERT_EQ(frames, 1u);

  const ParseResume::Stats& stats = framer->resume_stats();
  // A delimiter spec can only hint "one more byte", so there is roughly
  // one decode attempt per delivered byte — the point is that each one is
  // amortized O(1): nearly every attempt resumes a suspended parse…
  EXPECT_GE(stats.resumed + 8, stats.attempts);
  EXPECT_GT(stats.resumed, framed.size() / 2);
  // …and the delimiter scan never re-reads rejected bytes: total scanned
  // work stays O(frame), where restart-from-zero is O(frame²) (pinned
  // against the disabled-resume baseline below).
  EXPECT_LE(stats.scanned_bytes, 4 * framed.size());

  auto baseline = delim_framer(framing, /*resumable=*/false);
  StreamReader base_reader(*baseline);
  frames = 0;
  for (std::size_t i = 0; i < framed.size(); ++i) {
    base_reader.feed(BytesView(framed).subspan(i, 1));
    while (auto f = base_reader.next_frame()) {
      EXPECT_EQ(Bytes(f->begin(), f->end()), payload);
      ++frames;
    }
  }
  ASSERT_EQ(frames, 1u);
  EXPECT_GT(baseline->resume_stats().scanned_bytes, 16 * framed.size())
      << "restart-from-zero baseline unexpectedly cheap";
  EXPECT_EQ(baseline->resume_stats().resumed, 0u);
}

TEST(ResumableDecode, MultiFrameTrickleStaysByteIdenticalAndConsumesState) {
  auto framing = compile(kDelimFrameSpec, 1, 0);
  auto framer = delim_framer(framing);
  StreamReader reader(*framer);

  std::vector<Bytes> payloads;
  Bytes stream;
  for (int i = 0; i < 5; ++i) {
    payloads.push_back(
        to_bytes("frame " + std::to_string(i) + " " +
                 std::string(17 * (i + 1), static_cast<char>('a' + i))));
    Bytes framed;
    ASSERT_TRUE(framer->encode(payloads.back(), framed).ok());
    append(stream, framed);
  }

  Rng rng(77);
  std::vector<Bytes> got;
  std::size_t offset = 0;
  while (offset < stream.size()) {
    const std::size_t n =
        std::min<std::size_t>(rng.between(1, 5), stream.size() - offset);
    reader.feed(BytesView(stream).subspan(offset, n));
    offset += n;
    while (auto f = reader.next_frame()) {
      got.emplace_back(f->begin(), f->end());
    }
    ASSERT_FALSE(reader.failed()) << reader.error().message;
  }
  ASSERT_EQ(got.size(), payloads.size());
  for (std::size_t i = 0; i < payloads.size(); ++i) {
    EXPECT_EQ(got[i], payloads[i]) << "frame " << i;
  }
  // Every checkpoint was consumed by its completed frame.
  EXPECT_FALSE(framer->decode_suspended());
  EXPECT_EQ(reader.buffered(), 0u);
}

TEST(ResumableDecode, EncodeInterleavesWithASuspendedDecode) {
  // One framer instance serves both directions of a connection: an
  // encode() while a decode sits suspended must not disturb the
  // checkpoint (they share the node pool but not the resume state).
  auto framing = compile(kDelimFrameSpec, 1, 0);
  auto framer = delim_framer(framing);
  StreamReader reader(*framer);

  const Bytes payload = to_bytes("suspended mid-frame, encode interleaved");
  Bytes framed;
  ASSERT_TRUE(framer->encode(payload, framed).ok());

  reader.feed(BytesView(framed).first(framed.size() / 2));
  EXPECT_FALSE(reader.next_frame().has_value());
  EXPECT_TRUE(framer->decode_suspended());

  Bytes other;
  ASSERT_TRUE(framer->encode(to_bytes("outbound while suspended"), other)
                  .ok());
  EXPECT_TRUE(framer->decode_suspended());

  reader.feed(BytesView(framed).subspan(framed.size() / 2));
  auto f = reader.next_frame();
  ASSERT_TRUE(f.has_value());
  EXPECT_EQ(Bytes(f->begin(), f->end()), payload);
  EXPECT_FALSE(framer->decode_suspended());
}

TEST(ResumableDecode, ResyncAndResetInvalidateTheSuspendedParse) {
  auto framing = compile(kDelimFrameSpec, 1, 0);
  auto framer = delim_framer(framing);
  StreamReader reader(*framer);

  const Bytes payload = to_bytes("checkpoint to be dropped");
  Bytes framed;
  ASSERT_TRUE(framer->encode(payload, framed).ok());

  // Suspend, then resync: the front moved one byte, so the checkpoint
  // describes bytes that are no longer there.
  reader.feed(BytesView(framed).first(framed.size() - 1));
  EXPECT_FALSE(reader.next_frame().has_value());
  ASSERT_TRUE(framer->decode_suspended());
  reader.resync();
  EXPECT_FALSE(framer->decode_suspended());

  // Same for reset(); afterwards a clean replay still decodes.
  reader.reset();
  reader.feed(framed);
  reader.feed(BytesView(framed).first(framed.size() / 2));
  auto f = reader.next_frame();
  ASSERT_TRUE(f.has_value());
  EXPECT_EQ(Bytes(f->begin(), f->end()), payload);
  EXPECT_FALSE(reader.next_frame().has_value());  // half a second frame…
  ASSERT_TRUE(framer->decode_suspended());        // …suspends mid-flight
  reader.reset();
  EXPECT_FALSE(framer->decode_suspended());
  reader.feed(framed);
  f = reader.next_frame();
  ASSERT_TRUE(f.has_value());
  EXPECT_EQ(Bytes(f->begin(), f->end()), payload);
}

TEST(ResumableDecode, HostileStreamWithoutDelimiterHitsMaxFrameSize) {
  // ISSUE 5 satellite: a stream that keeps a frame Truncated forever must
  // not grow the reassembly buffer without bound — the accumulated-buffer
  // guard converts the stall into Malformed at the cap.
  auto framing = compile(kDelimFrameSpec, 1, 0);
  ObfuscatedFramer::Config cfg;
  cfg.payload_path = "fbody";
  cfg.max_frame_size = 256;
  auto framer = ObfuscatedFramer::create(framing, cfg).value();
  StreamReader reader(*framer);

  const Bytes drip(16, 0x41);  // 'A' forever: the "\r\n" never arrives
  for (int i = 0; i < 64 && !reader.failed(); ++i) {
    reader.feed(drip);
    reader.next_frame();
  }
  ASSERT_TRUE(reader.failed()) << "unbounded reassembly growth";
  EXPECT_NE(reader.error().message.find("max_frame_size"), std::string::npos)
      << reader.error().message;
  // The buffer stopped growing at the cap (plus one undelivered chunk).
  EXPECT_LE(reader.reassembly_size(), cfg.max_frame_size + 2 * drip.size());
  // A Malformed outcome — the cap guard included — drops the checkpoint:
  // nothing stale may survive into whatever front follows recovery.
  EXPECT_FALSE(framer->decode_suspended());
}

TEST(StreamReader, PayloadViewsSurviveFeedUntilReleased) {
  // ISSUE 5 satellite: with a buffer-aliasing framer, feed() used to
  // compact (erase) or reallocate buffer_ while a caller still held the
  // payload view from next_frame() — a use-after-free under ASan. Views
  // now pin the buffer until release_payloads().
  LengthPrefixFramer framer;
  StreamReader reader(framer);
  ASSERT_TRUE(framer.payload_aliases_buffer());

  const Bytes first = to_bytes("first frame payload");
  Bytes framed;
  ASSERT_TRUE(framer.encode(first, framed).ok());
  reader.feed(framed);
  auto held = reader.next_frame();
  ASSERT_TRUE(held.has_value());
  EXPECT_EQ(reader.outstanding_payloads(), 1u);

  // Compaction trigger: the whole buffer is consumed (head_ == size), so
  // the next feed would have erased the prefix the view aliases…
  const Bytes big(8192, 0x42);
  Bytes framed2;
  ASSERT_TRUE(framer.encode(big, framed2).ok());
  reader.feed(BytesView(framed2).first(3));
  // …and growth trigger: appending far beyond capacity would have
  // reallocated and freed the storage outright.
  reader.feed(BytesView(framed2).subspan(3));

  // The held view still reads the first payload, byte for byte.
  EXPECT_EQ(Bytes(held->begin(), held->end()), first);

  reader.release_payloads();
  EXPECT_EQ(reader.outstanding_payloads(), 0u);
  auto second = reader.next_frame();
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ(Bytes(second->begin(), second->end()), big);
  reader.release_payloads();
}

TEST(StreamReader, CompactionResumesAfterReleaseKeepingMemoryBounded) {
  LengthPrefixFramer framer;
  StreamReader reader(framer);
  const Bytes payload = to_bytes("steady state frame");
  Bytes framed;
  ASSERT_TRUE(framer.encode(payload, framed).ok());

  std::size_t high_water = 0;
  for (int i = 0; i < 256; ++i) {
    reader.feed(framed);
    auto f = reader.next_frame();
    ASSERT_TRUE(f.has_value());
    EXPECT_EQ(Bytes(f->begin(), f->end()), payload);
    reader.release_payloads();
    high_water = std::max(high_water, reader.reassembly_size());
  }
  // Released frames let compaction reclaim the consumed prefix: the
  // buffer never accumulates more than a few frames.
  EXPECT_LE(high_water, 4 * framed.size());
}

TEST(MinNeed, ChannelExposesTheFramerFloor) {
  auto framing = stream_safe_framing(20, 2);
  ASSERT_NE(framing, nullptr);
  auto framer = ObfuscatedFramer::create(framing).value();
  ProtocolCache cache;
  auto inner = cache.get_or_compile(kFrameSpec, config_of(1, 0));
  ASSERT_TRUE(inner.ok());
  Session session(*inner);
  Channel channel(session, *framer);
  EXPECT_EQ(channel.min_need(), framer->min_need());
}

// --- Channel property test --------------------------------------------------

struct ChannelCase {
  bool http;           // inner protocol: http request vs modbus request
  bool obf_framing;    // ObfuscatedFramer vs LengthPrefixFramer
  int per_node;        // inner obfuscation level
};

class ChannelRoundTrip : public ::testing::TestWithParam<ChannelCase> {};

TEST_P(ChannelRoundTrip, RandomChunkingsReassembleByteIdentically) {
  const ChannelCase& c = GetParam();
  const std::string_view spec =
      c.http ? http::request_spec() : modbus::request_spec();
  auto protocol = compile(spec, 40 + c.per_node, c.per_node);
  auto g = Framework::load_spec(spec).value();

  // Sender and receiver ends: independent sessions and framers over the
  // same compiled artifacts, as two processes would hold.
  LengthPrefixFramer send_plain, recv_plain;
  std::unique_ptr<ObfuscatedFramer> send_obf, recv_obf;
  if (c.obf_framing) {
    auto framing = stream_safe_framing(30, 2);
    ASSERT_NE(framing, nullptr);
    send_obf = ObfuscatedFramer::create(framing).value();
    recv_obf = ObfuscatedFramer::create(framing).value();
  }
  Framer& send_framer =
      c.obf_framing ? static_cast<Framer&>(*send_obf) : send_plain;
  Framer& recv_framer =
      c.obf_framing ? static_cast<Framer&>(*recv_obf) : recv_plain;

  WorkerPool pool(/*threads=*/2);
  Session sender(protocol, &pool);
  Session receiver(protocol, &pool);
  Channel out(sender, send_framer);
  Channel in(receiver, recv_framer);

  Rng rng(1234 + c.per_node + (c.http ? 1 : 0) + (c.obf_framing ? 2 : 0));
  constexpr std::size_t kMessages = 10;
  constexpr int kRounds = 3;
  for (int round = 0; round < kRounds; ++round) {
    // Build the canonical expectation with the *plain* protocol calls, then
    // stream the same messages through the channel pair.
    std::vector<Message> msgs;
    std::vector<Bytes> plain_wires;
    Bytes stream;
    for (std::size_t i = 0; i < kMessages; ++i) {
      msgs.push_back(c.http ? http::random_request(g, rng)
                            : modbus::random_request(g, rng));
      const std::uint64_t msg_seed = round * 1000 + i;
      plain_wires.push_back(
          protocol->serialize(msgs.back().root(), msg_seed).value());
      auto framed = out.send(msgs.back().root(), msg_seed);
      ASSERT_TRUE(framed.ok()) << framed.error().message;
      append(stream, *framed);
    }

    // Deliver under a random partition; odd rounds drain incrementally,
    // even rounds in one pooled batch at the end.
    const bool incremental = round % 2 == 1;
    std::vector<Expected<InstPtr>> got;
    std::size_t offset = 0;
    while (offset < stream.size()) {
      const std::size_t n = std::min<std::size_t>(
          rng.between(1, 48), stream.size() - offset);
      in.on_bytes(BytesView(stream).subspan(offset, n));
      offset += n;
      if (incremental) {
        while (auto message = in.receive()) got.push_back(std::move(*message));
      }
      ASSERT_FALSE(in.failed()) << in.error().message;
    }
    if (!incremental) got = in.drain_batch();

    ASSERT_EQ(got.size(), kMessages) << "round " << round;
    EXPECT_EQ(in.reader().buffered(), 0u);
    for (std::size_t i = 0; i < kMessages; ++i) {
      ASSERT_TRUE(got[i].ok()) << got[i].error().message;
      auto expected = protocol->parse(plain_wires[i]);
      ASSERT_TRUE(expected.ok());
      EXPECT_TRUE(ast::equal(**got[i], **expected))
          << "round " << round << " message " << i;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Cases, ChannelRoundTrip,
    ::testing::Values(ChannelCase{false, false, 0},
                      ChannelCase{false, false, 2},
                      ChannelCase{false, true, 2},
                      ChannelCase{true, false, 2},
                      ChannelCase{true, true, 1},
                      ChannelCase{true, true, 3}),
    [](const ::testing::TestParamInfo<ChannelCase>& info) {
      return std::string(info.param.http ? "Http" : "Modbus") +
             (info.param.obf_framing ? "ObfFrame" : "LenFrame") + "_o" +
             std::to_string(info.param.per_node);
    });

TEST(Channel, PerMessageParseErrorsDoNotKillTheStream) {
  auto protocol = compile(modbus::request_spec(), 44, 2);
  auto g = Framework::load_spec(modbus::request_spec()).value();
  LengthPrefixFramer framer;
  Session session(protocol);
  Channel channel(session, framer);

  Rng rng(9);
  Message good = modbus::random_request(g, rng);
  const Bytes good_wire = protocol->serialize(good.root(), 1).value();

  // Frame a corrupt payload between two good ones: framing stays intact, so
  // the middle message fails alone and the stream continues.
  LengthPrefixFramer encoder;
  Bytes stream, framed;
  ASSERT_TRUE(encoder.encode(good_wire, framed).ok());
  append(stream, framed);
  Bytes corrupt = good_wire;
  corrupt[corrupt.size() / 2] ^= 0x5a;
  ASSERT_TRUE(encoder.encode(corrupt, framed).ok());
  append(stream, framed);
  ASSERT_TRUE(encoder.encode(good_wire, framed).ok());
  append(stream, framed);

  channel.on_bytes(stream);
  auto first = channel.receive();
  ASSERT_TRUE(first.has_value());
  EXPECT_TRUE(first->ok());
  auto second = channel.receive();
  ASSERT_TRUE(second.has_value());
  auto third = channel.receive();
  ASSERT_TRUE(third.has_value());
  EXPECT_TRUE(third->ok());
  EXPECT_FALSE(channel.receive().has_value());
  EXPECT_FALSE(channel.failed());
}

}  // namespace
}  // namespace protoobf
