// Transformation framework tests: applicability constraints (paper Table
// II), graph rewrite shapes, forward/inverse execution, lineage tracking
// and the obfuscation engine.
#include <gtest/gtest.h>

#include <array>
#include <map>

#include "ast/ast.hpp"
#include "graph/validate.hpp"
#include "spec/parser.hpp"
#include "transform/apply.hpp"
#include "transform/constraints.hpp"
#include "transform/engine.hpp"
#include "transform/exec.hpp"
#include "transform/lineage.hpp"

namespace protoobf {
namespace {

Graph spec(std::string_view text) {
  auto g = parse_spec(text);
  EXPECT_TRUE(g.ok()) << g.error().message;
  return std::move(g.value());
}

constexpr std::string_view kFlat = R"(
protocol Flat
m: seq end {
  a: terminal fixed(2)
  b: terminal fixed(4)
  c: terminal end
}
)";

constexpr std::string_view kDelimited = R"(
protocol Del
m: seq end {
  word: terminal delimited(" ") ascii
  line: seq delimited("\r\n") {
    x: terminal fixed(1)
    y: terminal fixed(1)
  }
}
)";

// --- applicability -----------------------------------------------------------

TEST(Applicability, SplitArithmeticNeedsNonDelimitedContext) {
  Graph g = spec(kFlat);
  EXPECT_TRUE(applicable(g, TransformKind::SplitAdd,
                         g.find_by_name("a").value()));
  EXPECT_TRUE(applicable(g, TransformKind::SplitXor,
                         g.find_by_name("c").value()));

  Graph d = spec(kDelimited);
  // `word` is itself delimited -> no arithmetic split.
  EXPECT_FALSE(applicable(d, TransformKind::SplitAdd,
                          d.find_by_name("word").value()));
  // `x` sits under a delimiter-scanned region -> random bytes forbidden.
  EXPECT_FALSE(applicable(d, TransformKind::SplitAdd,
                          d.find_by_name("x").value()));
}

TEST(Applicability, SplitCatOnlyOnMultiByteFixed) {
  Graph g = spec(kFlat);
  EXPECT_TRUE(applicable(g, TransformKind::SplitCat,
                         g.find_by_name("a").value()));
  EXPECT_FALSE(applicable(g, TransformKind::SplitCat,
                          g.find_by_name("c").value()));  // End-bounded

  Graph d = spec(kDelimited);
  // SplitCat keeps bytes identical, so delimited context is fine — but a
  // one-byte field cannot be split.
  EXPECT_FALSE(applicable(d, TransformKind::SplitCat,
                          d.find_by_name("x").value()));
}

TEST(Applicability, ConstOpsAllowedOnFixedUnderEnd) {
  Graph g = spec(kFlat);
  EXPECT_TRUE(applicable(g, TransformKind::ConstXor,
                         g.find_by_name("b").value()));
  Graph d = spec(kDelimited);
  EXPECT_FALSE(applicable(d, TransformKind::ConstAdd,
                          d.find_by_name("y").value()));  // scanned region
}

TEST(Applicability, BoundaryChangeNeedsDelimited) {
  Graph g = spec(kFlat);
  EXPECT_FALSE(applicable(g, TransformKind::BoundaryChange,
                          g.find_by_name("a").value()));
  Graph d = spec(kDelimited);
  EXPECT_TRUE(applicable(d, TransformKind::BoundaryChange,
                         d.find_by_name("word").value()));
  EXPECT_TRUE(applicable(d, TransformKind::BoundaryChange,
                         d.find_by_name("line").value()));
}

TEST(Applicability, PadInsertRejectedUnderScanRegions) {
  Graph g = spec(kFlat);
  EXPECT_TRUE(applicable(g, TransformKind::PadInsert, g.root()));
  Graph d = spec(kDelimited);
  EXPECT_FALSE(applicable(d, TransformKind::PadInsert,
                          d.find_by_name("line").value()));
}

TEST(Applicability, ReadFromEndRequiresDeterminableExtent) {
  Graph g = spec(kFlat);
  EXPECT_TRUE(applicable(g, TransformKind::ReadFromEnd, g.root()));
  EXPECT_TRUE(applicable(g, TransformKind::ReadFromEnd,
                         g.find_by_name("a").value()));
  Graph d = spec(kDelimited);
  EXPECT_FALSE(applicable(d, TransformKind::ReadFromEnd,
                          d.find_by_name("word").value()));
}

TEST(Applicability, TabRepSplitNeedTwoChildElements) {
  Graph g = spec(R"(
protocol P
m: seq end {
  n: terminal fixed(1)
  tab: tabular(n) { e: seq { k: terminal fixed(1) v: terminal fixed(2) } }
  rep: repeat delimited(";") { f: seq { a: terminal fixed(1) b: terminal fixed(1) } }
  tab1: tabular(n) { single: terminal fixed(2) }
}
)");
  EXPECT_TRUE(applicable(g, TransformKind::TabSplit,
                         g.find_by_name("tab").value()));
  EXPECT_TRUE(applicable(g, TransformKind::RepSplit,
                         g.find_by_name("rep").value()));
  EXPECT_FALSE(applicable(g, TransformKind::TabSplit,
                          g.find_by_name("tab1").value()));  // 1 child elem
  EXPECT_FALSE(applicable(g, TransformKind::RepSplit,
                          g.find_by_name("tab").value()));  // wrong type
}

TEST(Applicability, ChildMoveNeedsTwoMovableChildren) {
  Graph g = spec(kFlat);
  // `c` is End-bounded (not movable); a and b remain -> movable.
  EXPECT_TRUE(applicable(g, TransformKind::ChildMove, g.root()));

  Graph g2 = spec(R"(
protocol P
m: seq end {
  a: terminal fixed(2)
  c: terminal end
}
)");
  EXPECT_FALSE(applicable(g2, TransformKind::ChildMove, g2.root()));
}

TEST(Applicability, ChildMoveRollsBackOnDependencyViolation) {
  // len must stay before payload: the only movable pair breaks parse order.
  Graph g = spec(R"(
protocol P
m: seq end {
  len: terminal fixed(2)
  payload: seq length(len) { q: terminal end }
  pad: terminal fixed(1)
}
)");
  Rng rng(5);
  RewriteContext ctx{g, rng, 0};
  int applied = 0;
  for (int i = 0; i < 40; ++i) {
    if (try_apply(ctx, TransformKind::ChildMove, g.root())) ++applied;
    ASSERT_TRUE(validate_parse_order(g).ok());
  }
  // Some attempts may succeed (pairs not involving the dependency), but the
  // graph must stay valid throughout.
  EXPECT_TRUE(validate(g).ok());
  (void)applied;
}

// --- rewrite shapes ----------------------------------------------------------

TEST(Rewrite, SplitAddShape) {
  Graph g = spec(kFlat);
  Rng rng(1);
  RewriteContext ctx{g, rng, 0};
  const NodeId a = g.find_by_name("a").value();
  const auto entry = try_apply(ctx, TransformKind::SplitAdd, a);
  ASSERT_TRUE(entry.has_value());
  EXPECT_TRUE(validate(g).ok()) << validate(g).error().message;

  const Node& s = g.node(entry->created_seq);
  EXPECT_EQ(s.type, NodeType::Sequence);
  EXPECT_EQ(s.boundary, BoundaryKind::Fixed);
  EXPECT_EQ(s.fixed_size, 4u);  // doubled
  ASSERT_EQ(s.children.size(), 2u);
  EXPECT_EQ(g.node(s.children[0]).boundary, BoundaryKind::Half);
  EXPECT_EQ(g.node(s.children[1]).boundary, BoundaryKind::End);
  // The original terminal is detached.
  EXPECT_EQ(g.node(a).parent, kNoNode);
}

TEST(Rewrite, BoundaryChangeShape) {
  Graph g = spec(kDelimited);
  Rng rng(1);
  RewriteContext ctx{g, rng, 0};
  const NodeId word = g.find_by_name("word").value();
  const auto entry = try_apply(ctx, TransformKind::BoundaryChange, word);
  ASSERT_TRUE(entry.has_value());
  EXPECT_TRUE(validate(g).ok()) << validate(g).error().message;

  const Node& s = g.node(entry->created_seq);
  ASSERT_EQ(s.children.size(), 2u);
  const Node& len = g.node(s.children[0]);
  EXPECT_EQ(len.boundary, BoundaryKind::Fixed);
  // word keeps its id but becomes Length-bounded; the delimiter is gone.
  EXPECT_EQ(g.node(word).boundary, BoundaryKind::Length);
  EXPECT_EQ(g.node(word).ref, s.children[0]);
  EXPECT_TRUE(g.node(word).delimiter.empty());
  EXPECT_EQ(entry->key, to_bytes(" "));
}

TEST(Rewrite, TabSplitProducesTwoCountedTabulars) {
  Graph g = spec(R"(
protocol P
m: seq end {
  n: terminal fixed(1)
  tab: tabular(n) { e: seq { k: terminal fixed(1) v: terminal fixed(2) } }
}
)");
  Rng rng(1);
  RewriteContext ctx{g, rng, 0};
  const NodeId tab = g.find_by_name("tab").value();
  const NodeId counter = g.node(tab).ref;
  const auto entry = try_apply(ctx, TransformKind::TabSplit, tab);
  ASSERT_TRUE(entry.has_value());
  EXPECT_TRUE(validate(g).ok()) << validate(g).error().message;

  const Node& s = g.node(entry->created_seq);
  ASSERT_EQ(s.children.size(), 2u);
  for (NodeId half : s.children) {
    EXPECT_EQ(g.node(half).type, NodeType::Tabular);
    EXPECT_EQ(g.node(half).ref, counter);
  }
  // (kv)^n became k^n v^n: the context-free language of Table II.
}

TEST(Rewrite, RepSplitIntroducesCountField) {
  Graph g = spec(R"(
protocol P
m: seq end {
  rep: repeat delimited(";") { e: seq { a: terminal fixed(1) b: terminal fixed(2) } }
}
)");
  Rng rng(1);
  RewriteContext ctx{g, rng, 0};
  const auto entry =
      try_apply(ctx, TransformKind::RepSplit, g.find_by_name("rep").value());
  ASSERT_TRUE(entry.has_value());
  EXPECT_TRUE(validate(g).ok()) << validate(g).error().message;
  const Node& s = g.node(entry->created_seq);
  ASSERT_EQ(s.children.size(), 3u);  // cnt, t1, t2
  EXPECT_EQ(g.node(s.children[0]).type, NodeType::Terminal);
  EXPECT_TRUE(g.is_counter_target(s.children[0]));
}

// --- forward/inverse execution ----------------------------------------------

class ExecRoundTrip : public ::testing::TestWithParam<TransformKind> {};

TEST_P(ExecRoundTrip, InverseOfForwardIsIdentity) {
  // A graph where every transformation kind has at least one target.
  Graph g = spec(R"(
protocol P
m: seq end {
  n: terminal fixed(1)
  word: terminal delimited("|") ascii
  tab: tabular(n) { e: seq { k: terminal fixed(1) v: terminal fixed(2) } }
  rep: repeat delimited(";") { f: seq { a: terminal fixed(1) b: terminal fixed(1) } }
  tail: terminal end
}
)");
  // Capture G1 node ids before rewriting: targets get detached, but their
  // ids stay valid for instances of the original graph.
  std::map<std::string, NodeId> ids;
  for (NodeId id : g.dfs_order()) ids[g.node(id).name] = id;

  Rng rng(7);
  RewriteContext ctx{g, rng, 0};

  // Find any target where this kind applies.
  std::optional<AppliedTransform> entry;
  for (const auto& [name, id] : ids) {
    if ((entry = try_apply(ctx, GetParam(), id))) break;
  }
  ASSERT_TRUE(entry.has_value())
      << "no applicable target for " << to_string(GetParam());

  // Build a message with two tab elements and two rep elements.
  const auto t = [&](const char* name, Bytes v) {
    return ast::terminal(ids.at(name), std::move(v));
  };
  const auto elem = [&](const char* seq_name, InstPtr x, InstPtr y) {
    std::vector<InstPtr> children;
    children.push_back(std::move(x));
    children.push_back(std::move(y));
    return ast::composite(ids.at(seq_name), std::move(children));
  };
  std::vector<InstPtr> tab_elems, rep_elems;
  tab_elems.push_back(elem("e", t("k", {1}), t("v", {2, 3})));
  tab_elems.push_back(elem("e", t("k", {4}), t("v", {5, 6})));
  rep_elems.push_back(elem("f", t("a", {7}), t("b", {8})));
  rep_elems.push_back(elem("f", t("a", {9}), t("b", {10})));

  std::vector<InstPtr> children;
  children.push_back(t("n", {2}));
  children.push_back(t("word", to_bytes("hello")));
  children.push_back(ast::composite(ids.at("tab"), std::move(tab_elems)));
  children.push_back(ast::composite(ids.at("rep"), std::move(rep_elems)));
  children.push_back(t("tail", to_bytes("xyz")));
  InstPtr message = ast::composite(g.root(), std::move(children));

  InstPtr reference = ast::clone(*message);
  Journal journal{*entry};
  Rng msg_rng(1234);
  ASSERT_TRUE(forward_all(message, journal, msg_rng).ok());
  // Structural transformations must actually change the tree (value-only
  // ones change values; ReadFromEnd changes nothing until emission).
  if (GetParam() != TransformKind::ReadFromEnd) {
    EXPECT_FALSE(ast::equal(*reference, *message));
  }
  ASSERT_TRUE(inverse_all(message, journal).ok());
  EXPECT_TRUE(ast::equal(*reference, *message));
}

INSTANTIATE_TEST_SUITE_P(
    AllKinds, ExecRoundTrip, ::testing::ValuesIn(kAllTransformKinds),
    [](const ::testing::TestParamInfo<TransformKind>& info) {
      return to_string(info.param);
    });

// --- lineage -----------------------------------------------------------------

TEST(Lineage, TracksHolderThroughStackedTransforms) {
  const Graph g1 = spec(R"(
protocol P
m: seq end {
  len: terminal fixed(2)
  payload: terminal length(len)
}
)");
  Graph g = g1.clone();  // the table is always built against pristine G1
  const NodeId len = g.find_by_name("len").value();
  Rng rng(3);
  RewriteContext ctx{g, rng, 0};
  Journal journal;
  journal.push_back(*try_apply(ctx, TransformKind::ConstXor, len));
  journal.push_back(*try_apply(ctx, TransformKind::SplitAdd, len));
  // A const op on a created half extends the lineage further.
  const NodeId half_b = journal[1].created_b;
  journal.push_back(*try_apply(ctx, TransformKind::ConstAdd, half_b));

  const HolderTable table = build_holder_table(g1, journal);
  ASSERT_EQ(table.holders.size(), 1u);
  const HolderInfo& info = table.holders[0];
  EXPECT_EQ(info.origin, len);
  EXPECT_EQ(info.top, journal[1].created_seq);
  EXPECT_EQ(info.chain, (std::vector<std::size_t>{0, 1, 2}));
  EXPECT_NE(table.find_by_top(info.top), nullptr);

  // Replaying the chain over a fresh value rebuilds the wire subtree and
  // inverts back to that value.
  Rng replay(9);
  auto rebuilt = rerun_chain(len, Bytes{0x00, 0x20}, journal, info.chain,
                             replay);
  ASSERT_TRUE(rebuilt.ok());
  auto logical = invert_clone(**rebuilt, journal);
  ASSERT_TRUE(logical.ok());
  EXPECT_EQ((*logical)->value, (Bytes{0x00, 0x20}));
}

TEST(Lineage, CreatedCountersBecomeHolders) {
  const Graph g1 = spec(R"(
protocol P
m: seq end {
  rep: repeat delimited(";") { e: seq { a: terminal fixed(1) b: terminal fixed(1) } }
}
)");
  Graph g = g1.clone();
  Rng rng(3);
  RewriteContext ctx{g, rng, 0};
  Journal journal;
  journal.push_back(
      *try_apply(ctx, TransformKind::RepSplit, g.find_by_name("rep").value()));
  const HolderTable table = build_holder_table(g1, journal);
  ASSERT_EQ(table.holders.size(), 1u);
  EXPECT_EQ(table.holders[0].origin, journal[0].created_a);
  EXPECT_TRUE(table.holders[0].chain.empty());
}

// --- engine ------------------------------------------------------------------

TEST(Engine, ZeroRoundsIsIdentity) {
  Graph g = spec(kFlat);
  ObfuscationConfig cfg;
  cfg.per_node = 0;
  auto result = obfuscate(g, cfg);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->journal.empty());
  EXPECT_EQ(result->stats.applied, 0u);
  EXPECT_EQ(result->graph.size(), g.size());
}

TEST(Engine, DeterministicForSeed) {
  Graph g = spec(kFlat);
  ObfuscationConfig cfg;
  cfg.per_node = 2;
  cfg.seed = 77;
  auto a = obfuscate(g, cfg);
  auto b = obfuscate(g, cfg);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_EQ(a->journal.size(), b->journal.size());
  for (std::size_t i = 0; i < a->journal.size(); ++i) {
    EXPECT_EQ(a->journal[i].kind, b->journal[i].kind);
    EXPECT_EQ(a->journal[i].target, b->journal[i].target);
  }
}

TEST(Engine, DifferentSeedsPickDifferentTransforms) {
  Graph g = spec(kFlat);
  ObfuscationConfig cfg;
  cfg.per_node = 2;
  cfg.seed = 1;
  auto a = obfuscate(g, cfg);
  cfg.seed = 2;
  auto b = obfuscate(g, cfg);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  bool differs = a->journal.size() != b->journal.size();
  for (std::size_t i = 0; !differs && i < a->journal.size(); ++i) {
    differs = a->journal[i].kind != b->journal[i].kind ||
              a->journal[i].target != b->journal[i].target;
  }
  EXPECT_TRUE(differs);
}

TEST(Engine, AppliedCountGrowsSuperlinearly) {
  // Nodes created in earlier rounds are obfuscated in later rounds, so the
  // count grows faster than linearly (paper Tables III/IV).
  Graph g = spec(kFlat);
  std::vector<std::size_t> applied;
  for (int o = 1; o <= 4; ++o) {
    ObfuscationConfig cfg;
    cfg.per_node = o;
    cfg.seed = 9;
    applied.push_back(obfuscate(g, cfg)->stats.applied);
  }
  EXPECT_GT(applied[1], 2 * applied[0] - 2);
  EXPECT_GT(applied[3], applied[2]);
  EXPECT_GT(applied[2], applied[1]);
}

TEST(Engine, RespectsEnabledSubset) {
  Graph g = spec(kFlat);
  ObfuscationConfig cfg;
  cfg.per_node = 3;
  cfg.enabled = {TransformKind::ConstXor};
  auto result = obfuscate(g, cfg);
  ASSERT_TRUE(result.ok());
  EXPECT_GT(result->stats.applied, 0u);
  for (const auto& entry : result->journal) {
    EXPECT_EQ(entry.kind, TransformKind::ConstXor);
  }
}

TEST(Engine, ResultAlwaysValidates) {
  for (std::uint64_t seed = 0; seed < 30; ++seed) {
    Graph g = spec(kDelimited);
    ObfuscationConfig cfg;
    cfg.per_node = 3;
    cfg.seed = seed;
    auto result = obfuscate(g, cfg);
    ASSERT_TRUE(result.ok()) << result.error().message;
    EXPECT_TRUE(validate(result->graph).ok());
  }
}

TEST(Engine, EveryKindGetsSelectedAcrossSeeds) {
  // Uniform random selection must exercise the whole Table I eventually; a
  // kind that never fires would mean dead applicability logic.
  Graph g = spec(R"(
protocol P
m: seq end {
  n: terminal fixed(1)
  word: terminal delimited("|") ascii
  tab: tabular(n) { e: seq { k: terminal fixed(1) v: terminal fixed(2) } }
  rep: repeat delimited(";") { f: seq { a: terminal fixed(1) b: terminal fixed(1) } }
  tail: terminal end
}
)");
  std::array<std::size_t, kTransformKindCount> totals{};
  for (std::uint64_t seed = 0; seed < 60; ++seed) {
    ObfuscationConfig cfg;
    cfg.per_node = 2;
    cfg.seed = seed;
    auto result = obfuscate(g, cfg);
    ASSERT_TRUE(result.ok());
    for (std::size_t k = 0; k < kTransformKindCount; ++k) {
      totals[k] += result->stats.per_kind[k];
    }
  }
  for (std::size_t k = 0; k < kTransformKindCount; ++k) {
    EXPECT_GT(totals[k], 0u) << "never applied: "
                             << to_string(kAllTransformKinds[k]);
  }
}

}  // namespace
}  // namespace protoobf
