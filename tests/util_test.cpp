// Unit tests for the byte/RNG/statistics substrate.
#include <gtest/gtest.h>

#include "util/bytes.hpp"
#include "util/result.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

namespace protoobf {
namespace {

TEST(Bytes, TextRoundTrip) {
  const Bytes b = to_bytes("hello");
  EXPECT_EQ(b.size(), 5u);
  EXPECT_EQ(to_text(b), "hello");
}

TEST(Bytes, HexRoundTrip) {
  const Bytes b{0xde, 0xad, 0x00, 0xff};
  EXPECT_EQ(to_hex(b), "dead00ff");
  EXPECT_EQ(from_hex("dead00ff").value(), b);
  EXPECT_EQ(from_hex("DEAD00FF").value(), b);
}

TEST(Bytes, HexRejectsBadInput) {
  EXPECT_FALSE(from_hex("abc").has_value());   // odd length
  EXPECT_FALSE(from_hex("zz").has_value());    // not hex
}

TEST(Bytes, FindLocatesFirstOccurrence) {
  const Bytes hay = to_bytes("a: b: c");
  const Bytes needle = to_bytes(": ");
  EXPECT_EQ(protoobf::find(hay, needle).value(), 1u);
  EXPECT_EQ(protoobf::find(hay, needle, 2).value(), 4u);
  EXPECT_FALSE(protoobf::find(hay, needle, 5).has_value());
}

TEST(Bytes, StartsWith) {
  const Bytes data = to_bytes("HTTP/1.1");
  EXPECT_TRUE(starts_with(data, to_bytes("HTTP")));
  EXPECT_FALSE(starts_with(data, to_bytes("http")));
  EXPECT_TRUE(starts_with(data, Bytes{}));
}

TEST(Bytes, AddSubMod256AreInverse) {
  const Bytes v{0x01, 0xff, 0x80, 0x00};
  const Bytes k{0xff, 0x01, 0x80, 0x10};
  EXPECT_EQ(sub_mod256(add_mod256(v, k), k), v);
  EXPECT_EQ(add_mod256(sub_mod256(v, k), k), v);
}

TEST(Bytes, XorIsInvolution) {
  const Bytes v{0xaa, 0x55};
  const Bytes k{0x0f, 0xf0};
  EXPECT_EQ(xor_bytes(xor_bytes(v, k), k), v);
}

TEST(Bytes, KeyedOpsCycleTheKey) {
  const Bytes v{1, 2, 3, 4, 5};
  const Bytes key{10, 20};
  const Bytes out = add_key(v, key);
  EXPECT_EQ(out, (Bytes{11, 22, 13, 24, 15}));
  EXPECT_EQ(sub_key(out, key), v);
}

TEST(Bytes, BigEndianRoundTrip) {
  EXPECT_EQ(be_encode(0x1234, 2), (Bytes{0x12, 0x34}));
  EXPECT_EQ(be_decode(Bytes{0x12, 0x34}), 0x1234u);
  EXPECT_EQ(be_decode(be_encode(0xdeadbeef, 4)), 0xdeadbeefu);
  // Width truncation wraps.
  EXPECT_EQ(be_encode(0x1ff, 1), (Bytes{0xff}));
}

TEST(Bytes, AsciiDecimal) {
  EXPECT_EQ(to_text(ascii_dec_encode(42)), "42");
  EXPECT_EQ(to_text(ascii_dec_encode(42, 4)), "0042");
  EXPECT_EQ(ascii_dec_decode(to_bytes("0042")).value(), 42u);
  EXPECT_FALSE(ascii_dec_decode(to_bytes("12a")).has_value());
  EXPECT_FALSE(ascii_dec_decode(Bytes{}).has_value());
}

TEST(Bytes, Reversed) {
  EXPECT_EQ(reversed(Bytes{1, 2, 3}), (Bytes{3, 2, 1}));
  EXPECT_EQ(reversed(Bytes{}), Bytes{});
}

TEST(Bytes, HexdumpShape) {
  const std::string dump = hexdump(to_bytes("hello world, this is a hexdump"));
  EXPECT_NE(dump.find("|hello world, thi|"), std::string::npos);
  EXPECT_NE(dump.find("00000010"), std::string::npos);
}

TEST(Rng, DeterministicForSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, BelowStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.below(10), 10u);
    const auto v = rng.between(5, 8);
    EXPECT_GE(v, 5u);
    EXPECT_LE(v, 8u);
  }
}

TEST(Rng, BytesHaveRequestedSize) {
  Rng rng(1);
  EXPECT_EQ(rng.bytes(17).size(), 17u);
  EXPECT_TRUE(rng.bytes(0).empty());
}

TEST(Rng, ShuffleKeepsElements) {
  Rng rng(3);
  std::vector<int> v{1, 2, 3, 4, 5};
  auto sorted = v;
  rng.shuffle(std::span<int>(v));
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, sorted);
}

TEST(Result, ExpectedHoldsValueOrError) {
  Expected<int> ok(5);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(*ok, 5);
  Expected<int> bad = Unexpected("boom", 12);
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.error().message, "boom");
  EXPECT_EQ(bad.error().offset, 12u);
}

TEST(Result, StatusDefaultIsSuccess) {
  Status s;
  EXPECT_TRUE(s.ok());
  Status f = Unexpected("nope");
  EXPECT_FALSE(f.ok());
}

TEST(Stats, SummaryComputesAvgMinMax) {
  const double samples[] = {1.0, 2.0, 6.0};
  const Summary s = Summary::of(samples);
  EXPECT_DOUBLE_EQ(s.avg, 3.0);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 6.0);
  EXPECT_EQ(s.count, 3u);
  EXPECT_EQ(s.format(1), "3.0[1.0; 6.0]");
}

TEST(Stats, LinearFitRecoversLine) {
  std::vector<double> x, y;
  for (int i = 0; i < 50; ++i) {
    x.push_back(i);
    y.push_back(3.0 * i + 7.0);
  }
  const LinearFit fit = LinearFit::of(x, y);
  EXPECT_NEAR(fit.slope, 3.0, 1e-9);
  EXPECT_NEAR(fit.intercept, 7.0, 1e-9);
  EXPECT_NEAR(fit.correlation, 1.0, 1e-9);
}

TEST(Stats, CorrelationSignReflectsTrend) {
  const double x[] = {0, 1, 2, 3};
  const double y[] = {9, 7, 5, 3};
  EXPECT_LT(LinearFit::of(x, y).correlation, -0.99);
}

}  // namespace
}  // namespace protoobf
