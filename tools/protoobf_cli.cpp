// protoobf — command-line front end to the framework.
//
// Commands:
//   protoobf validate <spec-file>
//       Parse and validate a specification; print the graph outline.
//   protoobf graph <spec-file> [--obfuscate SEED:PER_NODE]
//       Print the (optionally obfuscated) message format graph in DOT.
//   protoobf obfuscate <spec-file> --seed N --per-node K
//       Apply transformations; print the journal and the resulting graph.
//   protoobf codegen <spec-file> --seed N --per-node K [-o out.cpp]
//       Generate the serializer/parser library; print the complexity
//       metrics of §VII-B.
//   protoobf stream <spec-file> [--seed N --per-node K] [--emit COUNT]
//       Framed-stream filter over stdin/stdout (src/stream's Channel).
//       With --emit, writes COUNT framed random messages to stdout;
//       without, reassembles frames from stdin (any chunking) and prints
//       one line per recovered message. The two ends pipe together:
//         protoobf stream p.spec --emit 20 | protoobf stream p.spec
//       --frame-width W picks the length-prefix width; --obf-frame S:K
//       obfuscates the framing layer itself (both ends must agree).
//
// Spec files use the ProtoSpec language (see README.md).
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <unordered_map>
#include <unordered_set>

#include "codegen/generator.hpp"
#include "core/protoobf.hpp"
#include "stream/channel.hpp"

namespace {

using namespace protoobf;

int usage() {
  std::fprintf(stderr,
               "usage: protoobf <validate|graph|obfuscate|codegen|stream> "
               "<spec-file> [--seed N] [--per-node K] [-o FILE]\n"
               "       stream extras: [--emit COUNT] [--expect COUNT] "
               "[--msg-seed N] [--frame-width W] "
               "[--obf-frame SEED:PER_NODE] [--dump]\n");
  return 2;
}

struct Options {
  std::string command;
  std::string spec_path;
  std::uint64_t seed = 1;
  int per_node = 1;
  std::string output;
  // stream command
  std::size_t emit = 0;         // 0 = decode mode
  std::size_t expect = 0;       // decode: fail unless exactly N recovered
  std::uint64_t msg_seed = 42;  // message randomness for --emit
  std::size_t frame_width = 4;
  bool obf_frame = false;
  std::uint64_t obf_frame_seed = 13;
  int obf_frame_per_node = 2;
  bool dump = false;
};

bool parse_args(int argc, char** argv, Options& opts) {
  if (argc < 3) return false;
  opts.command = argv[1];
  opts.spec_path = argv[2];
  for (int i = 3; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--seed" && i + 1 < argc) {
      opts.seed = std::strtoull(argv[++i], nullptr, 0);
    } else if (arg == "--per-node" && i + 1 < argc) {
      opts.per_node = std::atoi(argv[++i]);
    } else if (arg == "-o" && i + 1 < argc) {
      opts.output = argv[++i];
    } else if (arg == "--emit" && i + 1 < argc) {
      opts.emit = static_cast<std::size_t>(std::strtoull(argv[++i], nullptr, 0));
    } else if (arg == "--expect" && i + 1 < argc) {
      opts.expect =
          static_cast<std::size_t>(std::strtoull(argv[++i], nullptr, 0));
    } else if (arg == "--msg-seed" && i + 1 < argc) {
      opts.msg_seed = std::strtoull(argv[++i], nullptr, 0);
    } else if (arg == "--frame-width" && i + 1 < argc) {
      opts.frame_width =
          static_cast<std::size_t>(std::strtoull(argv[++i], nullptr, 0));
    } else if (arg == "--obf-frame" && i + 1 < argc) {
      opts.obf_frame = true;
      const std::string value = argv[++i];
      const std::size_t colon = value.find(':');
      opts.obf_frame_seed = std::strtoull(value.c_str(), nullptr, 0);
      if (colon != std::string::npos) {
        opts.obf_frame_per_node = std::atoi(value.c_str() + colon + 1);
      }
    } else if (arg == "--dump") {
      opts.dump = true;
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", arg.c_str());
      return false;
    }
  }
  return true;
}

Expected<Graph> load(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Unexpected("cannot open '" + path + "'");
  std::ostringstream text;
  text << in.rdbuf();
  return Framework::load_spec(text.str());
}

int cmd_validate(const Options& opts) {
  auto graph = load(opts.spec_path);
  if (!graph.ok()) {
    std::fprintf(stderr, "error: %s\n", graph.error().message.c_str());
    return 1;
  }
  std::printf("protocol '%s': %zu nodes, depth %zu — OK\n\n",
              graph->protocol_name().c_str(), graph->size(), graph->depth());
  std::fputs(to_outline(*graph).c_str(), stdout);
  return 0;
}

int cmd_graph(const Options& opts) {
  auto graph = load(opts.spec_path);
  if (!graph.ok()) {
    std::fprintf(stderr, "error: %s\n", graph.error().message.c_str());
    return 1;
  }
  if (opts.per_node > 0) {
    ObfuscationConfig cfg;
    cfg.seed = opts.seed;
    cfg.per_node = opts.per_node;
    auto protocol = Framework::generate(*graph, cfg);
    if (!protocol.ok()) {
      std::fprintf(stderr, "error: %s\n", protocol.error().message.c_str());
      return 1;
    }
    std::fputs(to_dot(protocol->wire_graph()).c_str(), stdout);
  } else {
    std::fputs(to_dot(*graph).c_str(), stdout);
  }
  return 0;
}

int cmd_obfuscate(const Options& opts) {
  auto graph = load(opts.spec_path);
  if (!graph.ok()) {
    std::fprintf(stderr, "error: %s\n", graph.error().message.c_str());
    return 1;
  }
  ObfuscationConfig cfg;
  cfg.seed = opts.seed;
  cfg.per_node = opts.per_node;
  auto protocol = Framework::generate(*graph, cfg);
  if (!protocol.ok()) {
    std::fprintf(stderr, "error: %s\n", protocol.error().message.c_str());
    return 1;
  }
  std::printf("# %zu transformations (seed %llu, %d per node)\n",
              protocol->journal().size(),
              static_cast<unsigned long long>(opts.seed), opts.per_node);
  for (const auto& entry : protocol->journal()) {
    std::printf("%s\n", entry.describe(protocol->wire_graph()).c_str());
  }
  std::printf("\n# obfuscated message format\n%s",
              to_outline(protocol->wire_graph()).c_str());
  return 0;
}

int cmd_codegen(const Options& opts) {
  auto graph = load(opts.spec_path);
  if (!graph.ok()) {
    std::fprintf(stderr, "error: %s\n", graph.error().message.c_str());
    return 1;
  }
  ObfuscationConfig cfg;
  cfg.seed = opts.seed;
  cfg.per_node = opts.per_node;
  auto protocol = Framework::generate(*graph, cfg);
  if (!protocol.ok()) {
    std::fprintf(stderr, "error: %s\n", protocol.error().message.c_str());
    return 1;
  }
  const GeneratedCode code = generate_cpp(*protocol);
  std::fprintf(stderr,
               "# %zu lines, %zu structs, call graph size %zu, depth %zu\n",
               code.metrics.lines, code.metrics.structs,
               code.metrics.callgraph_size, code.metrics.callgraph_depth);
  if (opts.output.empty()) {
    std::fputs(code.source.c_str(), stdout);
  } else {
    std::ofstream out(opts.output);
    out << code.source;
    std::fprintf(stderr, "# wrote %s\n", opts.output.c_str());
  }
  return 0;
}

// --- stream -----------------------------------------------------------------

/// Frame spec for --obf-frame; identical on both ends of a pipe by
/// construction (obfuscation is deterministic in (spec, seed, per_node)).
constexpr std::string_view kCliFrameSpec = R"(
protocol Frame
frame: seq end {
  flen: terminal fixed(4)
  fbody: terminal length(flen)
}
)";

/// Best-effort random logical message for --emit: letters/digits in user
/// terminals, derived fields left for the serializer, optional presence
/// chosen consistently with its condition (conditions reference fields that
/// parse earlier, so the referenced value is already drawn when the
/// Optional is reached). Specs with exotic constraints may still reject a
/// draw; those are reported and skipped.
InstPtr random_instance(const Graph& g, NodeId id, Rng& rng,
                        const std::unordered_set<NodeId>& derived,
                        std::unordered_map<NodeId, const Inst*>& built) {
  const Node& n = g.node(id);
  InstPtr inst;
  switch (n.type) {
    case NodeType::Terminal: {
      inst = ast::deferred(id);
      if (!n.has_const && derived.count(id) == 0) {
        const std::size_t size =
            n.boundary == BoundaryKind::Fixed
                ? n.fixed_size
                : static_cast<std::size_t>(rng.between(1, 10));
        Bytes value(size);
        for (Byte& b : value) {
          b = n.encoding == Encoding::AsciiDec
                  ? static_cast<Byte>(rng.between('0', '9'))
                  : static_cast<Byte>(rng.between('a', 'z'));
        }
        inst->value = std::move(value);
      }
      break;
    }
    case NodeType::Sequence: {
      inst = std::make_unique<Inst>(id);
      for (const NodeId child : n.children) {
        inst->children.push_back(
            random_instance(g, child, rng, derived, built));
      }
      break;
    }
    case NodeType::Optional: {
      bool present = n.condition.kind == Condition::Kind::Always;
      if (!present) {
        const auto ref = built.find(n.condition.ref);
        if (ref != built.end()) {
          const Node& holder = g.node(n.condition.ref);
          present = n.condition.evaluate(
              holder.has_const ? holder.const_value : ref->second->value);
        }
      }
      if (present) {
        inst = std::make_unique<Inst>(id);
        inst->children.push_back(
            random_instance(g, n.children[0], rng, derived, built));
      } else {
        inst = ast::absent(id);
      }
      break;
    }
    case NodeType::Repetition:
    case NodeType::Tabular: {
      inst = std::make_unique<Inst>(id);
      const std::uint64_t count = rng.between(1, 2);
      for (std::uint64_t k = 0; k < count; ++k) {
        inst->children.push_back(
            random_instance(g, n.children[0], rng, derived, built));
      }
      break;
    }
  }
  built[id] = inst.get();
  return inst;
}

std::unordered_set<NodeId> derived_nodes(const Graph& g) {
  std::unordered_set<NodeId> derived;
  for (const NodeId id : g.dfs_order()) {
    const Node& n = g.node(id);
    if (n.ref != kNoNode) derived.insert(n.ref);
  }
  return derived;
}

int cmd_stream(const Options& opts) {
  auto graph = load(opts.spec_path);
  if (!graph.ok()) {
    std::fprintf(stderr, "error: %s\n", graph.error().message.c_str());
    return 1;
  }
  ObfuscationConfig cfg;
  cfg.seed = opts.seed;
  cfg.per_node = opts.per_node;
  auto compiled = Framework::generate(*graph, cfg);
  if (!compiled.ok()) {
    std::fprintf(stderr, "error: %s\n", compiled.error().message.c_str());
    return 1;
  }
  auto protocol =
      std::make_shared<const ObfuscatedProtocol>(std::move(*compiled));

  // Framing layer: transparent length prefix, or the obfuscated frame spec
  // when both ends agreed on --obf-frame SEED:PER_NODE.
  LengthPrefixFramer::Config lp;
  lp.width = opts.frame_width;
  LengthPrefixFramer plain_framer(lp);
  std::unique_ptr<ObfuscatedFramer> obf_framer;
  if (opts.obf_frame) {
    auto frame_graph = Framework::load_spec(kCliFrameSpec).value();
    ObfuscationConfig fcfg;
    fcfg.seed = opts.obf_frame_seed;
    fcfg.per_node = opts.obf_frame_per_node;
    auto framing = Framework::generate(frame_graph, fcfg);
    if (!framing.ok()) {
      std::fprintf(stderr, "error: %s\n", framing.error().message.c_str());
      return 1;
    }
    auto framer = ObfuscatedFramer::create(
        std::make_shared<const ObfuscatedProtocol>(std::move(*framing)));
    if (!framer.ok()) {
      std::fprintf(stderr,
                   "error: %s (try another --obf-frame seed)\n",
                   framer.error().message.c_str());
      return 1;
    }
    obf_framer = std::move(*framer);
  }
  Framer& framer =
      obf_framer != nullptr ? static_cast<Framer&>(*obf_framer) : plain_framer;

  Session session(protocol);
  Channel channel(session, framer);

  if (opts.emit > 0) {
    // Emit mode: framed random messages to stdout, summary to stderr.
    const auto derived = derived_nodes(*graph);
    Rng rng(opts.msg_seed);
    std::size_t sent = 0;
    std::size_t bytes = 0;
    for (std::size_t i = 0; i < opts.emit; ++i) {
      std::unordered_map<NodeId, const Inst*> built;
      InstPtr msg =
          random_instance(*graph, graph->root(), rng, derived, built);
      auto framed = channel.send(*msg, opts.msg_seed + i);
      if (!framed.ok()) {
        std::fprintf(stderr, "message %zu rejected: %s\n", i,
                     framed.error().message.c_str());
        continue;
      }
      std::fwrite(framed->data(), 1, framed->size(), stdout);
      ++sent;
      bytes += framed->size();
    }
    std::fflush(stdout);
    std::fprintf(stderr, "emitted %zu/%zu messages, %zu bytes\n", sent,
                 opts.emit, bytes);
    // Rejected draws are skipped by contract; only a fully dry run fails.
    return sent > 0 ? 0 : 1;
  }

  // Decode mode: reassemble whatever chunking stdin delivers.
  std::size_t received = 0;
  char chunk[4096];
  for (;;) {
    const std::size_t n = std::fread(chunk, 1, sizeof chunk, stdin);
    if (n == 0) break;
    channel.on_bytes(
        BytesView(reinterpret_cast<const Byte*>(chunk), n));
    while (auto message = channel.receive()) {
      if (!message->ok()) {
        std::fprintf(stderr, "message %zu parse error: %s\n", received,
                     (*message).error().message.c_str());
        return 1;
      }
      if (opts.dump) {
        std::fputs(ast::dump(*graph, ***message).c_str(), stdout);
      } else {
        std::printf("message %zu: %zu instances\n", received,
                    ast::count(***message));
      }
      ++received;
    }
    if (channel.failed()) {
      std::fprintf(stderr, "framing error: %s\n",
                   channel.error().message.c_str());
      return 1;
    }
  }
  if (std::ferror(stdin)) {
    std::fprintf(stderr, "read error on stdin after %zu messages\n",
                 received);
    return 1;
  }
  if (channel.reader().buffered() > 0) {
    std::fprintf(stderr, "stream ended mid-frame (%zu bytes buffered, %zu "
                 "more needed)\n",
                 channel.reader().buffered(), channel.need_bytes());
    return 1;
  }
  std::printf("recovered %zu messages\n", received);
  if (opts.expect > 0 && received != opts.expect) {
    std::fprintf(stderr, "expected %zu messages, recovered %zu\n",
                 opts.expect, received);
    return 1;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  Options opts;
  if (!parse_args(argc, argv, opts)) return usage();
  if (opts.command == "validate") return cmd_validate(opts);
  if (opts.command == "graph") return cmd_graph(opts);
  if (opts.command == "obfuscate") return cmd_obfuscate(opts);
  if (opts.command == "codegen") return cmd_codegen(opts);
  if (opts.command == "stream") return cmd_stream(opts);
  return usage();
}
