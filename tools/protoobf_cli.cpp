// protoobf — command-line front end to the framework.
//
// Commands:
//   protoobf validate <spec-file>
//       Parse and validate a specification; print the graph outline.
//   protoobf graph <spec-file> [--obfuscate SEED:PER_NODE]
//       Print the (optionally obfuscated) message format graph in DOT.
//   protoobf obfuscate <spec-file> --seed N --per-node K
//       Apply transformations; print the journal and the resulting graph.
//   protoobf codegen <spec-file> --seed N --per-node K [-o out.cpp]
//       Generate the serializer/parser library; print the complexity
//       metrics of §VII-B.
//   protoobf stream <spec-file> [--seed N --per-node K] [--emit COUNT]
//       Framed-stream filter over stdin/stdout (src/stream's Channel).
//       With --emit, writes COUNT framed random messages to stdout;
//       without, reassembles frames from stdin (any chunking) and prints
//       one line per recovered message. The two ends pipe together:
//         protoobf stream p.spec --emit 20 | protoobf stream p.spec
//       --frame-width W picks the length-prefix width; --obf-frame S:K
//       obfuscates the framing layer itself (both ends must agree).
//   protoobf serve <spec-file> [--seed N --per-node K] [--port P]
//       Obfuscated echo server (src/net): accepts TCP connections, parses
//       every framed message and serializes it right back. --shards N runs
//       N event-loop threads (SO_REUSEPORT); --round-robin switches to a
//       single acceptor handing connections across shards; --idle-ms
//       closes silent connections. Prints "listening on HOST:PORT" once
//       ready. Stop with SIGINT/SIGTERM.
//   protoobf connect <spec-file> --port P --emit COUNT [--expect COUNT]
//       Client peer for serve: dials, sends COUNT framed random messages,
//       counts the echoes. --retry (alias --retry-ms) keeps dialing a
//       not-yet-listening server, backing off between refused attempts
//       (--backoff-ms picks the initial delay). Both ends must agree on
//       spec, --seed/--per-node and the framing flags (--frame-width /
//       --obf-frame).
//   protoobf soak <spec-file> [--conns N] [--emit COUNT] [--fault-seed N]
//       Self-contained reliability drill: spins up a loopback echo server
//       and N ReliableClients under a seeded transport-fault schedule
//       (short reads/writes, EAGAIN storms, scheduled resets, refused
//       dials), then verifies every client confirmed its whole message
//       window despite the chaos. --no-faults runs the same drill on a
//       clean transport (a throughput baseline). Prints the fault and
//       recovery counters; exits nonzero on any unconfirmed message.
//   protoobf top --port P [--host H] [--interval-ms N] [--once]
//       Live metrics viewer: polls /metrics.json on the admin endpoint a
//       serve/soak run exposes (--metrics-port) and redraws a per-shard
//       table of connections, traffic rates and frame-latency quantiles,
//       plus session/native/reconnect summary lines. --once prints a
//       single plain snapshot and exits (CI-friendly).
//   protoobf lint <spec-file> [--seed N --per-node K] [--json] [--deny]
//       Static analysis over the wire graph (src/analysis): decode
//       ambiguity, frame bounds, holder-chain integrity, stream/datagram
//       safety, DPI fingerprint bytes — as structured diagnostics with
//       node locations and fix hints. Without --per-node the identity
//       graph (the spec's own wire syntax) is linted; with --seed and
//       --per-node a specific compiled artifact is. --json emits one JSON
//       object; --deny promotes warnings to the failing exit. Exit 0 =
//       clean, 1 = gated findings, 2 = load error.
//   protoobf compile <spec-file> --seed N --per-node K
//       Pre-build the native unit for (spec, seed, per_node) into the
//       shared on-disk cache ($PROTOOBF_NATIVE_CACHE, default
//       /tmp/protoobf-native-<uid>) and print its path and cache key.
//       Later serve/connect/stream runs with --native hit the artifact
//       without paying the compile on the serving path.
//
// stream/serve/connect accept --native: parse/serialize through the
// compiled generated unit instead of the interpreter (identical bytes,
// see src/native/). When no toolchain is available in this environment —
// no `c++` on PATH, or a build mode whose objects cannot be dlopen'd —
// the command says so and falls back to the interpreter.
//
// Spec files use the ProtoSpec language (see README.md).
#include <netdb.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cctype>
#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <map>
#include <memory>
#include <sstream>
#include <thread>
#include <unordered_map>
#include <unordered_set>

#include "analysis/analyzer.hpp"
#include "codegen/generator.hpp"
#include "core/protoobf.hpp"
#include "fuzz/mutator.hpp"
#include "fuzz/random_message.hpp"
#include "fuzz/runner.hpp"
#include "native/cache.hpp"
#include "net/connector.hpp"
#include "net/fault.hpp"
#include "net/reconnect.hpp"
#include "net/server.hpp"
#include "obs/export.hpp"
#include "obs/families.hpp"
#include "runtime/parse.hpp"
#include "session/protocol_cache.hpp"
#include "stream/channel.hpp"

namespace {

using namespace protoobf;

int usage() {
  std::fprintf(
      stderr,
      "usage: protoobf <validate|lint|graph|obfuscate|codegen|compile|"
      "stream|serve|connect|soak|fuzz|top> <spec-file> [--seed N] "
      "[--per-node K] [-o FILE]\n"
      "       lint extras: [--json] [--deny]  (identity graph by default; "
      "--per-node K lints the compiled artifact; --deny fails on warnings)\n"
      "       serve/compile: [--no-lint]  (serve/compile refuse artifacts "
      "with error-severity lint findings unless overridden)\n"
      "       stream extras: [--emit COUNT] [--expect COUNT] "
      "[--msg-seed N] [--frame-width W] "
      "[--obf-frame SEED:PER_NODE] [--dump]\n"
      "       stream/serve/connect: [--native]  (serve from the compiled "
      "generated unit; falls back to the interpreter without a toolchain)\n"
      "       fuzz extras: [--iters N] [--chunked] [--whole] "
      "[--msg-seed N]  (env: PROTOOBF_FUZZ_SEED overrides --msg-seed)\n"
      "       serve extras: [--host H] [--port P] [--shards N] "
      "[--round-robin] [--idle-ms N] [--max-conns N]  (SIGTERM drains "
      "gracefully, SIGINT stops hard)\n"
      "       connect extras: [--host H] [--port P] [--emit COUNT] "
      "[--expect COUNT] [--msg-seed N] [--retry MS] [--backoff-ms N]\n"
      "       soak extras: [--conns N] [--emit MSGS_PER_CLIENT] "
      "[--fault-seed N] [--no-faults] [--shards N] [--max-conns N] "
      "[--retry MS] [--backoff-ms N]\n"
      "       serve/soak: [--metrics-port P] [--no-metrics]  (admin HTTP "
      "endpoint: /metrics, /metrics.json, /trace; serve defaults to an "
      "ephemeral port, soak needs the flag)\n"
      "       top (no spec file): --port P [--host H] [--interval-ms N] "
      "[--once]  (poll a running admin endpoint, live table)\n");
  return 2;
}

struct Options {
  std::string command;
  std::string spec_path;
  std::uint64_t seed = 1;
  int per_node = 1;
  bool per_node_set = false;  // --per-node given explicitly (lint cares)
  std::string output;
  // lint
  bool json = false;
  bool deny = false;     // promote warnings to the failing exit
  bool no_lint = false;  // serve/compile: skip the error-severity gate
  // stream command
  std::size_t emit = 0;         // 0 = decode mode
  std::size_t expect = 0;       // decode: fail unless exactly N recovered
  std::uint64_t msg_seed = 42;  // message randomness for --emit
  std::size_t frame_width = 4;
  bool obf_frame = false;
  std::uint64_t obf_frame_seed = 13;
  int obf_frame_per_node = 2;
  bool dump = false;
  // serve / connect
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;  // serve: 0 = ephemeral; connect: required
  std::size_t shards = 1;
  bool round_robin = false;
  std::size_t idle_ms = 0;
  std::size_t retry_ms = 2000;
  bool retry_set = false;       // --retry/--retry-ms given explicitly
  std::size_t backoff_ms = 20;  // initial backoff between refused dials
  std::size_t max_conns = 0;    // serve/soak: accept-pause cap (0 = none)
  // soak
  std::size_t conns = 64;
  std::uint64_t fault_seed = 42;
  bool no_faults = false;
  // fuzz
  std::size_t iters = 1000;
  bool chunked = false;  // force the chunk-split resume replay
  bool whole = false;    // force whole-message parses (no prefix replay)
  // native backend (stream/serve/connect)
  bool native = false;
  // observability (serve/soak/top)
  std::uint16_t metrics_port = 0;  // 0 = ephemeral
  bool metrics_port_set = false;
  bool no_metrics = false;  // skip the admin endpoint AND the instruments
  std::size_t interval_ms = 1000;  // top refresh period
  bool once = false;               // top: one plain snapshot, then exit
};

bool parse_args(int argc, char** argv, Options& opts) {
  if (argc < 2) return false;
  opts.command = argv[1];
  int first_flag = 2;
  // `top` talks to a running server; it takes flags only, no spec file.
  if (opts.command != "top") {
    if (argc < 3) return false;
    opts.spec_path = argv[2];
    first_flag = 3;
  }
  for (int i = first_flag; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--seed" && i + 1 < argc) {
      opts.seed = std::strtoull(argv[++i], nullptr, 0);
    } else if (arg == "--per-node" && i + 1 < argc) {
      opts.per_node = std::atoi(argv[++i]);
      opts.per_node_set = true;
    } else if (arg == "--json") {
      opts.json = true;
    } else if (arg == "--deny") {
      opts.deny = true;
    } else if (arg == "--no-lint") {
      opts.no_lint = true;
    } else if (arg == "-o" && i + 1 < argc) {
      opts.output = argv[++i];
    } else if (arg == "--emit" && i + 1 < argc) {
      opts.emit = static_cast<std::size_t>(std::strtoull(argv[++i], nullptr, 0));
    } else if (arg == "--expect" && i + 1 < argc) {
      opts.expect =
          static_cast<std::size_t>(std::strtoull(argv[++i], nullptr, 0));
    } else if (arg == "--msg-seed" && i + 1 < argc) {
      opts.msg_seed = std::strtoull(argv[++i], nullptr, 0);
    } else if (arg == "--frame-width" && i + 1 < argc) {
      opts.frame_width =
          static_cast<std::size_t>(std::strtoull(argv[++i], nullptr, 0));
    } else if (arg == "--obf-frame" && i + 1 < argc) {
      opts.obf_frame = true;
      const std::string value = argv[++i];
      const std::size_t colon = value.find(':');
      opts.obf_frame_seed = std::strtoull(value.c_str(), nullptr, 0);
      if (colon != std::string::npos) {
        opts.obf_frame_per_node = std::atoi(value.c_str() + colon + 1);
      }
    } else if (arg == "--dump") {
      opts.dump = true;
    } else if (arg == "--host" && i + 1 < argc) {
      opts.host = argv[++i];
    } else if (arg == "--port" && i + 1 < argc) {
      const unsigned long value = std::strtoul(argv[++i], nullptr, 0);
      if (value > 65535) {
        std::fprintf(stderr, "--port out of range: %lu\n", value);
        return false;
      }
      opts.port = static_cast<std::uint16_t>(value);
    } else if (arg == "--shards" && i + 1 < argc) {
      opts.shards = static_cast<std::size_t>(std::strtoull(argv[++i], nullptr, 0));
    } else if (arg == "--round-robin") {
      opts.round_robin = true;
    } else if (arg == "--idle-ms" && i + 1 < argc) {
      opts.idle_ms = static_cast<std::size_t>(std::strtoull(argv[++i], nullptr, 0));
    } else if ((arg == "--retry-ms" || arg == "--retry") && i + 1 < argc) {
      opts.retry_ms = static_cast<std::size_t>(std::strtoull(argv[++i], nullptr, 0));
      opts.retry_set = true;
    } else if (arg == "--backoff-ms" && i + 1 < argc) {
      opts.backoff_ms =
          static_cast<std::size_t>(std::strtoull(argv[++i], nullptr, 0));
    } else if (arg == "--max-conns" && i + 1 < argc) {
      opts.max_conns =
          static_cast<std::size_t>(std::strtoull(argv[++i], nullptr, 0));
    } else if (arg == "--conns" && i + 1 < argc) {
      opts.conns =
          static_cast<std::size_t>(std::strtoull(argv[++i], nullptr, 0));
    } else if (arg == "--fault-seed" && i + 1 < argc) {
      opts.fault_seed = std::strtoull(argv[++i], nullptr, 0);
    } else if (arg == "--no-faults") {
      opts.no_faults = true;
    } else if (arg == "--iters" && i + 1 < argc) {
      opts.iters = static_cast<std::size_t>(std::strtoull(argv[++i], nullptr, 0));
    } else if (arg == "--chunked") {
      opts.chunked = true;
    } else if (arg == "--whole") {
      opts.whole = true;
    } else if (arg == "--native") {
      opts.native = true;
    } else if (arg == "--metrics-port" && i + 1 < argc) {
      const unsigned long value = std::strtoul(argv[++i], nullptr, 0);
      if (value > 65535) {
        std::fprintf(stderr, "--metrics-port out of range: %lu\n", value);
        return false;
      }
      opts.metrics_port = static_cast<std::uint16_t>(value);
      opts.metrics_port_set = true;
    } else if (arg == "--no-metrics") {
      opts.no_metrics = true;
    } else if (arg == "--interval-ms" && i + 1 < argc) {
      opts.interval_ms =
          static_cast<std::size_t>(std::strtoull(argv[++i], nullptr, 0));
    } else if (arg == "--once") {
      opts.once = true;
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", arg.c_str());
      return false;
    }
  }
  return true;
}

Expected<std::string> read_text(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Unexpected("cannot open '" + path + "'");
  std::ostringstream text;
  text << in.rdbuf();
  return text.str();
}

Expected<Graph> load(const std::string& path) {
  auto text = read_text(path);
  if (!text.ok()) return Unexpected(text.error());
  return Framework::load_spec(*text);
}

// --- native backend ---------------------------------------------------------

/// --native: build (or reuse from the shared on-disk cache) the compiled
/// generated unit for this exact (spec, seed, per_node) and attach it, so
/// the command's default parse/serialize entry points serve natively.
/// Degrades to the interpreter with an explanation when the environment
/// has no usable toolchain or the build fails — never hard-errors, because
/// the interpreted path is always correct.
void maybe_attach_native(const ObfuscatedProtocol& protocol,
                         const Options& opts) {
  if (!opts.native) return;
  if (!native::NativeCompiler::toolchain_available()) {
    std::fprintf(stderr, "--native unavailable (%s); serving interpreted\n",
                 native::NativeCompiler::toolchain_status().c_str());
    return;
  }
  auto text = read_text(opts.spec_path);
  if (!text.ok()) {
    std::fprintf(stderr, "--native failed (%s); serving interpreted\n",
                 text.error().message.c_str());
    return;
  }
  ObfuscationConfig cfg;
  cfg.seed = opts.seed;
  cfg.per_node = opts.per_node;
  // The cache object is transient; the attached backend keeps the .so
  // mapped for as long as the protocol serves from it.
  native::NativeCache cache;
  auto backend =
      cache.get_or_compile(protocol, ProtocolCache::hash_spec(*text), cfg);
  if (!backend.ok()) {
    std::fprintf(stderr, "--native build failed (%s); serving interpreted\n",
                 backend.error().message.c_str());
    return;
  }
  const std::string& so = (*backend)->unit().path();
  protocol.attach_wire_backend(*backend);
  std::fprintf(stderr, "native unit attached: %s\n", so.c_str());
}

// --- lint -------------------------------------------------------------------

int cmd_lint(const Options& opts) {
  auto graph = load(opts.spec_path);
  if (!graph.ok()) {
    std::fprintf(stderr, "error: %s\n", graph.error().message.c_str());
    return 2;
  }
  analysis::Report report;
  if (opts.per_node_set && opts.per_node > 0) {
    ObfuscationConfig cfg;
    cfg.seed = opts.seed;
    cfg.per_node = opts.per_node;
    auto protocol = Framework::generate(*graph, cfg);
    if (!protocol.ok()) {
      std::fprintf(stderr, "error: %s\n", protocol.error().message.c_str());
      return 2;
    }
    report = analysis::analyze(*protocol);
  } else {
    // Identity: the specification's own wire syntax, before obfuscation.
    report = analysis::analyze_graph(*graph);
  }
  if (opts.json) {
    std::printf("%s\n", analysis::render_json(report).c_str());
  } else {
    std::fputs(analysis::render_text(report).c_str(), stdout);
  }
  const bool gated =
      report.errors() > 0 || (opts.deny && report.warnings() > 0);
  return gated ? 1 : 0;
}

/// The serve/compile hard gate: error-severity lint findings refuse the
/// artifact (a wrong artifact on the wire is worse than a refused start).
/// --no-lint is the operator's escape hatch.
bool lint_gate(const ObfuscatedProtocol& protocol, const Options& opts,
               const char* action) {
  if (opts.no_lint) return true;
  const analysis::Report report = analysis::analyze(protocol);
  if (report.clean()) return true;
  std::fputs(analysis::render_text(report).c_str(), stderr);
  std::fprintf(stderr,
               "refusing to %s: %zu error-severity lint finding(s) "
               "(--no-lint overrides)\n",
               action, report.errors());
  return false;
}

int cmd_compile(const Options& opts) {
  auto text = read_text(opts.spec_path);
  if (!text.ok()) {
    std::fprintf(stderr, "error: %s\n", text.error().message.c_str());
    return 1;
  }
  auto graph = Framework::load_spec(*text);
  if (!graph.ok()) {
    std::fprintf(stderr, "error: %s\n", graph.error().message.c_str());
    return 1;
  }
  ObfuscationConfig cfg;
  cfg.seed = opts.seed;
  cfg.per_node = opts.per_node;
  auto protocol = Framework::generate(*graph, cfg);
  if (!protocol.ok()) {
    std::fprintf(stderr, "error: %s\n", protocol.error().message.c_str());
    return 1;
  }
  if (!lint_gate(*protocol, opts, "compile the native unit")) return 1;
  if (!native::NativeCompiler::toolchain_available()) {
    std::fprintf(stderr, "error: no usable native toolchain: %s\n",
                 native::NativeCompiler::toolchain_status().c_str());
    return 1;
  }
  const std::uint64_t spec_hash = ProtocolCache::hash_spec(*text);
  native::NativeCompiler compiler;
  auto built = compiler.compile(
      *protocol,
      native::NativeCompiler::cache_file_base(
          *protocol, spec_hash, opts.seed,
          static_cast<std::size_t>(opts.per_node)));
  if (!built.ok()) {
    std::fprintf(stderr, "error: %s\n", built.error().message.c_str());
    return 1;
  }
  std::printf("unit: %s\n", built->unit->path().c_str());
  std::printf("key: spec %016llx seed %llu per-node %d, fingerprint %016llx\n",
              static_cast<unsigned long long>(spec_hash),
              static_cast<unsigned long long>(opts.seed), opts.per_node,
              static_cast<unsigned long long>(built->unit->fingerprint()));
  if (built->disk_hit) {
    std::printf("cache hit: reused the on-disk unit, no compile\n");
  } else {
    std::printf("%s in %.0f ms\n",
                built->recompiled ? "recompiled (stale or corrupt artifact)"
                                  : "compiled",
                built->compile_ms);
  }
  return 0;
}

int cmd_validate(const Options& opts) {
  auto graph = load(opts.spec_path);
  if (!graph.ok()) {
    std::fprintf(stderr, "error: %s\n", graph.error().message.c_str());
    return 1;
  }
  std::printf("protocol '%s': %zu nodes, depth %zu — OK\n\n",
              graph->protocol_name().c_str(), graph->size(), graph->depth());
  std::fputs(to_outline(*graph).c_str(), stdout);
  return 0;
}

int cmd_graph(const Options& opts) {
  auto graph = load(opts.spec_path);
  if (!graph.ok()) {
    std::fprintf(stderr, "error: %s\n", graph.error().message.c_str());
    return 1;
  }
  if (opts.per_node > 0) {
    ObfuscationConfig cfg;
    cfg.seed = opts.seed;
    cfg.per_node = opts.per_node;
    auto protocol = Framework::generate(*graph, cfg);
    if (!protocol.ok()) {
      std::fprintf(stderr, "error: %s\n", protocol.error().message.c_str());
      return 1;
    }
    std::fputs(to_dot(protocol->wire_graph()).c_str(), stdout);
  } else {
    std::fputs(to_dot(*graph).c_str(), stdout);
  }
  return 0;
}

int cmd_obfuscate(const Options& opts) {
  auto graph = load(opts.spec_path);
  if (!graph.ok()) {
    std::fprintf(stderr, "error: %s\n", graph.error().message.c_str());
    return 1;
  }
  ObfuscationConfig cfg;
  cfg.seed = opts.seed;
  cfg.per_node = opts.per_node;
  auto protocol = Framework::generate(*graph, cfg);
  if (!protocol.ok()) {
    std::fprintf(stderr, "error: %s\n", protocol.error().message.c_str());
    return 1;
  }
  std::printf("# %zu transformations (seed %llu, %d per node)\n",
              protocol->journal().size(),
              static_cast<unsigned long long>(opts.seed), opts.per_node);
  for (const auto& entry : protocol->journal()) {
    std::printf("%s\n", entry.describe(protocol->wire_graph()).c_str());
  }
  std::printf("\n# obfuscated message format\n%s",
              to_outline(protocol->wire_graph()).c_str());
  return 0;
}

int cmd_codegen(const Options& opts) {
  auto graph = load(opts.spec_path);
  if (!graph.ok()) {
    std::fprintf(stderr, "error: %s\n", graph.error().message.c_str());
    return 1;
  }
  ObfuscationConfig cfg;
  cfg.seed = opts.seed;
  cfg.per_node = opts.per_node;
  auto protocol = Framework::generate(*graph, cfg);
  if (!protocol.ok()) {
    std::fprintf(stderr, "error: %s\n", protocol.error().message.c_str());
    return 1;
  }
  const GeneratedCode code = generate_cpp(*protocol);
  std::fprintf(stderr,
               "# %zu lines, %zu structs, call graph size %zu, depth %zu\n",
               code.metrics.lines, code.metrics.structs,
               code.metrics.callgraph_size, code.metrics.callgraph_depth);
  if (opts.output.empty()) {
    std::fputs(code.source.c_str(), stdout);
  } else {
    std::ofstream out(opts.output);
    out << code.source;
    std::fprintf(stderr, "# wrote %s\n", opts.output.c_str());
  }
  return 0;
}

// --- stream -----------------------------------------------------------------

/// Frame spec for --obf-frame; identical on both ends of a pipe by
/// construction (obfuscation is deterministic in (spec, seed, per_node)).
constexpr std::string_view kCliFrameSpec = R"(
protocol Frame
frame: seq end {
  flen: terminal fixed(4)
  fbody: terminal length(flen)
}
)";

/// Compiled obfuscated framing layer: the shared frame protocol plus the
/// framer the validation pass already built (ready for single-channel use;
/// factory-based callers mint fresh ones per connection from `protocol`).
struct CompiledFraming {
  std::shared_ptr<const ObfuscatedProtocol> protocol;
  std::unique_ptr<ObfuscatedFramer> framer;
};

/// Compiles the CLI frame spec at the agreed (seed, per_node) and
/// validates it as a framing layer (stream-safety, payload detection) —
/// shared by the stream filter and serve/connect, so the two paths cannot
/// drift. A rejected compilation names the fix: try another seed.
Expected<CompiledFraming> compile_frame_protocol(const Options& opts) {
  auto frame_graph = Framework::load_spec(kCliFrameSpec).value();
  ObfuscationConfig fcfg;
  fcfg.seed = opts.obf_frame_seed;
  fcfg.per_node = opts.obf_frame_per_node;
  auto framing = Framework::generate(frame_graph, fcfg);
  if (!framing.ok()) return Unexpected(framing.error());
  auto shared =
      std::make_shared<const ObfuscatedProtocol>(std::move(*framing));
  auto framer = ObfuscatedFramer::create(shared);
  if (!framer.ok()) {
    return Unexpected(Error{framer.error().message +
                            " (try another --obf-frame seed)"});
  }
  return CompiledFraming{std::move(shared), std::move(*framer)};
}

int cmd_stream(const Options& opts) {
  auto graph = load(opts.spec_path);
  if (!graph.ok()) {
    std::fprintf(stderr, "error: %s\n", graph.error().message.c_str());
    return 1;
  }
  ObfuscationConfig cfg;
  cfg.seed = opts.seed;
  cfg.per_node = opts.per_node;
  auto compiled = Framework::generate(*graph, cfg);
  if (!compiled.ok()) {
    std::fprintf(stderr, "error: %s\n", compiled.error().message.c_str());
    return 1;
  }
  auto protocol =
      std::make_shared<const ObfuscatedProtocol>(std::move(*compiled));
  maybe_attach_native(*protocol, opts);

  // Framing layer: transparent length prefix, or the obfuscated frame spec
  // when both ends agreed on --obf-frame SEED:PER_NODE.
  LengthPrefixFramer::Config lp;
  lp.width = opts.frame_width;
  LengthPrefixFramer plain_framer(lp);
  std::unique_ptr<ObfuscatedFramer> obf_framer;
  if (opts.obf_frame) {
    auto framing = compile_frame_protocol(opts);
    if (!framing.ok()) {
      std::fprintf(stderr, "error: %s\n", framing.error().message.c_str());
      return 1;
    }
    obf_framer = std::move(framing->framer);
  }
  Framer& framer =
      obf_framer != nullptr ? static_cast<Framer&>(*obf_framer) : plain_framer;

  Session session(protocol);
  Channel channel(session, framer);

  if (opts.emit > 0) {
    // Emit mode: framed random messages to stdout, summary to stderr.
    Rng rng(opts.msg_seed);
    std::size_t sent = 0;
    std::size_t bytes = 0;
    for (std::size_t i = 0; i < opts.emit; ++i) {
      InstPtr msg = fuzz::random_message(*graph, rng);
      auto framed = channel.send(*msg, opts.msg_seed + i);
      if (!framed.ok()) {
        std::fprintf(stderr, "message %zu rejected: %s\n", i,
                     framed.error().message.c_str());
        continue;
      }
      std::fwrite(framed->data(), 1, framed->size(), stdout);
      ++sent;
      bytes += framed->size();
    }
    std::fflush(stdout);
    std::fprintf(stderr, "emitted %zu/%zu messages, %zu bytes\n", sent,
                 opts.emit, bytes);
    // Rejected draws are skipped by contract; only a fully dry run fails.
    return sent > 0 ? 0 : 1;
  }

  // Decode mode: reassemble whatever chunking stdin delivers.
  std::size_t received = 0;
  char chunk[4096];
  for (;;) {
    const std::size_t n = std::fread(chunk, 1, sizeof chunk, stdin);
    if (n == 0) break;
    channel.on_bytes(
        BytesView(reinterpret_cast<const Byte*>(chunk), n));
    while (auto message = channel.receive()) {
      if (!message->ok()) {
        std::fprintf(stderr, "message %zu parse error: %s\n", received,
                     (*message).error().message.c_str());
        return 1;
      }
      if (opts.dump) {
        std::fputs(ast::dump(*graph, ***message).c_str(), stdout);
      } else {
        std::printf("message %zu: %zu instances\n", received,
                    ast::count(***message));
      }
      ++received;
    }
    if (channel.failed()) {
      std::fprintf(stderr, "framing error: %s\n",
                   channel.error().message.c_str());
      return 1;
    }
  }
  if (std::ferror(stdin)) {
    std::fprintf(stderr, "read error on stdin after %zu messages\n",
                 received);
    return 1;
  }
  if (channel.reader().buffered() > 0) {
    std::fprintf(stderr, "stream ended mid-frame (%zu bytes buffered, %zu "
                 "more needed)\n",
                 channel.reader().buffered(), channel.need_bytes());
    return 1;
  }
  std::printf("recovered %zu messages\n", received);
  if (opts.expect > 0 && received != opts.expect) {
    std::fprintf(stderr, "expected %zu messages, recovered %zu\n",
                 opts.expect, received);
    return 1;
  }
  return 0;
}

// --- serve / connect --------------------------------------------------------

/// Compiles the message protocol both net commands run over.
Expected<std::shared_ptr<const ObfuscatedProtocol>> compile_protocol(
    const Options& opts) {
  auto graph = load(opts.spec_path);
  if (!graph.ok()) return Unexpected(graph.error());
  ObfuscationConfig cfg;
  cfg.seed = opts.seed;
  cfg.per_node = opts.per_node;
  auto compiled = Framework::generate(*graph, cfg);
  if (!compiled.ok()) return Unexpected(compiled.error());
  return std::make_shared<const ObfuscatedProtocol>(std::move(*compiled));
}

/// The framing layer serve/connect share with the stream filter: a
/// transparent length prefix, or the obfuscated CLI frame spec when both
/// ends agreed on --obf-frame SEED:PER_NODE.
Expected<net::FramerFactory> framer_factory_of(const Options& opts) {
  if (!opts.obf_frame) {
    LengthPrefixFramer::Config lp;
    lp.width = opts.frame_width;
    return net::length_prefix_framer_factory(lp);
  }
  auto framing = compile_frame_protocol(opts);
  if (!framing.ok()) return Unexpected(framing.error());
  return net::obfuscated_framer_factory(std::move(framing->protocol));
}

std::atomic<int> g_stop_signal{0};

void stop_signal(int sig) { g_stop_signal.store(sig); }

/// Starts the admin exposition endpoint for serve/soak. Returns nullptr
/// (with a stderr note) when the port is busy — metrics stay on, only the
/// scrape surface is missing, so the serving command keeps going.
std::unique_ptr<obs::AdminServer> start_admin(std::uint16_t port) {
  obs::AdminServer::Config cfg;
  cfg.endpoint = {"127.0.0.1", port};
  auto admin = std::make_unique<obs::AdminServer>(cfg);
  if (Status s = admin->start(); !s) {
    std::fprintf(stderr, "metrics endpoint disabled: %s\n",
                 s.error().message.c_str());
    return nullptr;
  }
  std::printf("metrics on http://127.0.0.1:%u/metrics "
              "(also /metrics.json, /trace)\n",
              admin->port());
  std::fflush(stdout);
  return admin;
}

int cmd_serve(const Options& opts) {
  if (opts.no_metrics) obs::set_enabled(false);
  auto protocol = compile_protocol(opts);
  if (!protocol.ok()) {
    std::fprintf(stderr, "error: %s\n", protocol.error().message.c_str());
    return 1;
  }
  if (!lint_gate(**protocol, opts, "serve this artifact")) return 1;
  maybe_attach_native(**protocol, opts);
  auto factory = framer_factory_of(opts);
  if (!factory.ok()) {
    std::fprintf(stderr, "error: %s\n", factory.error().message.c_str());
    return 1;
  }

  net::Server::Config cfg;
  cfg.endpoint = {opts.host, opts.port};
  cfg.shards = opts.shards > 0 ? opts.shards : 1;
  cfg.reuse_port = !opts.round_robin;
  cfg.connection.idle_timeout = std::chrono::milliseconds(opts.idle_ms);
  cfg.max_connections = opts.max_conns;
  // The drain path doubles as the operator's shutdown report: a final
  // registry snapshot on stderr once the last connection is gone.
  cfg.log_drain_snapshot = !opts.no_metrics;

  net::Server server(*protocol, *factory, cfg);
  server.on_accept([](net::Connection& conn) {
    conn.on_message([](net::Connection& c, Expected<InstPtr> msg) {
      if (!msg.ok()) {
        std::fprintf(stderr, "fd %d: message rejected: %s\n", c.fd(),
                     msg.error().message.c_str());
        return;
      }
      // Echo with a per-connection deterministic seed so a peer (or a
      // test) can reproduce the exact bytes with a session replica.
      if (Status s = c.send(**msg, c.stats().messages_in); !s) {
        std::fprintf(stderr, "fd %d: echo failed: %s\n", c.fd(),
                     s.error().message.c_str());
        return;
      }
      // Backpressure: a peer that keeps sending but never drains its
      // echoes would grow the write queue without bound. Stop reading and
      // flush what is queued — close() caps the queue at the watermark.
      if (!c.writable()) {
        std::fprintf(stderr,
                     "fd %d: peer not draining (%zu bytes queued), "
                     "closing\n",
                     c.fd(), c.queued());
        c.close();
      }
    });
    conn.on_close([](net::Connection& c, const Error* err) {
      std::fprintf(stderr,
                   "connection closed: %llu in / %llu out msgs%s%s\n",
                   static_cast<unsigned long long>(c.stats().messages_in),
                   static_cast<unsigned long long>(c.stats().messages_out),
                   err != nullptr ? ", error: " : "",
                   err != nullptr ? err->message.c_str() : "");
    });
  });
  if (Status s = server.start(); !s) {
    std::fprintf(stderr, "error: %s\n", s.error().message.c_str());
    return 1;
  }
  std::printf("listening on %s:%u (%zu shard%s, %s, %s framing)\n",
              opts.host.c_str(), server.port(), server.shard_count(),
              server.shard_count() == 1 ? "" : "s",
              opts.round_robin ? "round-robin" : "SO_REUSEPORT",
              opts.obf_frame ? "obfuscated" : "length-prefix");
  std::fflush(stdout);
  std::unique_ptr<obs::AdminServer> admin;
  if (!opts.no_metrics) admin = start_admin(opts.metrics_port);

  std::signal(SIGINT, stop_signal);
  std::signal(SIGTERM, stop_signal);
  while (g_stop_signal.load() == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  // Snapshot before shutdown: drain()/stop() retire the shards (and their
  // counters) on the way out.
  const net::Server::Stats stats = server.stats();
  // SIGTERM is the orchestrator's "finish what you started": close the
  // listeners, flush every write queue, then leave. SIGINT stops hard.
  if (g_stop_signal.load() == SIGTERM) {
    std::fprintf(stderr, "SIGTERM: draining connections...\n");
    server.drain(std::chrono::milliseconds(5000));
  }
  server.stop();
  std::fprintf(stderr, "served %llu connections (%llu rejected, %llu shed)\n",
               static_cast<unsigned long long>(stats.accepted),
               static_cast<unsigned long long>(stats.rejected),
               static_cast<unsigned long long>(stats.shed));
  return 0;
}

int cmd_connect(const Options& opts) {
  if (opts.port == 0) {
    std::fprintf(stderr, "error: connect requires --port\n");
    return 2;
  }
  const std::size_t emit = opts.emit > 0 ? opts.emit : 16;
  auto protocol = compile_protocol(opts);
  if (!protocol.ok()) {
    std::fprintf(stderr, "error: %s\n", protocol.error().message.c_str());
    return 1;
  }
  maybe_attach_native(**protocol, opts);
  // The G1 view the random messages are built against — taken from the
  // compiled protocol so it cannot diverge from what serialization uses.
  const Graph& graph = (*protocol)->original();
  auto factory = framer_factory_of(opts);
  if (!factory.ok()) {
    std::fprintf(stderr, "error: %s\n", factory.error().message.c_str());
    return 1;
  }

  // Dial with retries: the smoke tests race this against a server that is
  // still binding its port. Connector::dial absorbs the ECONNREFUSED
  // window itself, backing off with full jitter between attempts.
  net::EventLoop loop;
  const net::Endpoint ep{opts.host, opts.port};
  auto framer = (*factory)();
  if (!framer.ok()) {
    std::fprintf(stderr, "error: %s\n", framer.error().message.c_str());
    return 1;
  }
  net::BackoffPolicy backoff;
  backoff.initial = std::chrono::milliseconds(opts.backoff_ms);
  if (backoff.initial > backoff.cap) backoff.cap = backoff.initial;
  auto dialed = net::Connector::dial(loop, ep, *protocol, std::move(*framer),
                                     {}, std::chrono::milliseconds(opts.retry_ms),
                                     backoff);
  if (!dialed.ok()) {
    std::fprintf(stderr, "error: %s\n", dialed.error().message.c_str());
    return 1;
  }
  std::unique_ptr<net::Connection> conn = std::move(*dialed);

  std::size_t echoed = 0;
  std::size_t parse_errors = 0;
  bool closed = false;
  std::string close_error;
  conn->on_message([&](net::Connection&, Expected<InstPtr> msg) {
    if (!msg.ok()) {
      ++parse_errors;
      std::fprintf(stderr, "echo %zu parse error: %s\n", echoed,
                   msg.error().message.c_str());
      return;
    }
    if (opts.dump) std::fputs(ast::dump(graph, **msg).c_str(), stdout);
    ++echoed;
  });
  conn->on_close([&](net::Connection&, const Error* err) {
    closed = true;
    if (err != nullptr) close_error = err->message;
  });
  if (Status s = conn->open(); !s) {
    std::fprintf(stderr, "error: %s\n", s.error().message.c_str());
    return 1;
  }

  // Emit the batch up front (the loop is not running yet, so sends are
  // race-free; overflow queues drain through EPOLLOUT below).
  Rng rng(opts.msg_seed);
  std::size_t sent = 0;
  for (std::size_t i = 0; i < emit; ++i) {
    InstPtr msg = fuzz::random_message(graph, rng);
    if (Status s = conn->send(*msg, opts.msg_seed + i); !s) {
      std::fprintf(stderr, "message %zu rejected: %s\n", i,
                   s.error().message.c_str());
      continue;
    }
    ++sent;
  }

  const auto echo_deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (echoed + parse_errors < sent && !closed &&
         std::chrono::steady_clock::now() < echo_deadline) {
    loop.run_once(50);
  }
  if (!closed) conn->close();
  for (int i = 0; i < 4 && !closed; ++i) loop.run_once(10);

  std::printf("echoed %zu/%zu messages\n", echoed, sent);
  if (!close_error.empty()) {
    std::fprintf(stderr, "connection error: %s\n", close_error.c_str());
    return 1;
  }
  if (parse_errors > 0) return 1;
  if (opts.expect > 0 && echoed != opts.expect) {
    std::fprintf(stderr, "expected %zu echoes, got %zu\n", opts.expect,
                 echoed);
    return 1;
  }
  return echoed == sent && sent > 0 ? 0 : 1;
}

// --- soak -------------------------------------------------------------------

/// Per-client soak bookkeeping. `confirmed` is loop-thread-only; the
/// atomics are what the polling main thread reads.
struct SoakClient {
  std::unique_ptr<net::ReliableClient> client;
  std::uint64_t confirmed = 0;  // echoes seen -> next cumulative ack
  std::atomic<std::uint64_t> acked{0};
  std::atomic<bool> gave_up{false};
};

/// In-process reliability drill: a sharded loopback echo server and
/// --conns ReliableClients exchange --emit messages each while a seeded
/// FaultInjector on both sides of the wire shortens reads, storms EAGAIN,
/// refuses dials and kills connections at scheduled byte offsets. Every
/// echo confirms the client's oldest outstanding message (cumulative ack,
/// like TCP); success means every client confirmed its whole window — the
/// at-least-once resend queue rode through every injected kill. The
/// rigorous zero-loss/zero-duplication proof lives in tests/soak_test.cpp;
/// this command is the operator-facing drill and throughput probe.
int cmd_soak(const Options& opts) {
  if (opts.no_metrics) obs::set_enabled(false);
  const std::size_t conns = opts.conns > 0 ? opts.conns : 1;
  const std::uint64_t msgs = opts.emit > 0 ? opts.emit : 16;
  const bool faults = !opts.no_faults;

  auto protocol = compile_protocol(opts);
  if (!protocol.ok()) {
    std::fprintf(stderr, "error: %s\n", protocol.error().message.c_str());
    return 1;
  }
  const Graph& graph = (*protocol)->original();
  auto factory = framer_factory_of(opts);
  if (!factory.ok()) {
    std::fprintf(stderr, "error: %s\n", factory.error().message.c_str());
    return 1;
  }

  net::FaultPlan plan;
  plan.seed = opts.fault_seed;
  if (faults) {
    plan.short_read = 0.2;
    plan.short_write = 0.2;
    plan.eagain = 0.1;
    plan.kill_rate = 0.3;
    plan.kill_window_bytes = 2048;
    plan.refuse_every = 5;
  }
  net::FaultInjector server_faults(plan);
  net::FaultPlan client_plan = plan;
  client_plan.seed = plan.seed ^ 0x9e3779b97f4a7c15ull;
  net::FaultInjector client_faults(client_plan);
  std::printf("soak: %zu clients x %llu messages, fault seed %llu%s\n", conns,
              static_cast<unsigned long long>(msgs),
              static_cast<unsigned long long>(opts.fault_seed),
              faults ? "" : " (faults off)");

  net::Server::Config scfg;
  scfg.endpoint = {"127.0.0.1", 0};
  scfg.shards = opts.shards > 0 ? opts.shards : 1;
  scfg.max_connections =
      opts.max_conns > 0 ? opts.max_conns : conns + 64;
  scfg.connection.drain_timeout = std::chrono::milliseconds(2000);
  if (faults) scfg.connection.ops = &server_faults;
  std::atomic<std::uint64_t> server_msgs{0};
  net::Server server(*protocol, *factory, scfg);
  server.on_accept([&](net::Connection& conn) {
    conn.on_message([&](net::Connection& c, Expected<InstPtr> msg) {
      if (!msg.ok()) return;  // per-message parse error: stream continues
      server_msgs.fetch_add(1);
      (void)c.send(**msg, c.stats().messages_in);
    });
  });
  if (Status s = server.start(); !s) {
    std::fprintf(stderr, "error: %s\n", s.error().message.c_str());
    return 1;
  }
  // soak only exposes the scrape endpoint when asked: the drill is a batch
  // run, but --metrics-port lets `protoobf top` watch the chaos live.
  std::unique_ptr<obs::AdminServer> admin;
  if (opts.metrics_port_set && !opts.no_metrics) {
    admin = start_admin(opts.metrics_port);
  }

  const std::size_t n_loops = conns < 4 ? conns : 4;
  std::vector<std::unique_ptr<net::EventLoop>> loops;
  for (std::size_t i = 0; i < n_loops; ++i) {
    loops.push_back(std::make_unique<net::EventLoop>());
  }
  std::vector<SoakClient> clients(conns);
  for (std::size_t i = 0; i < conns; ++i) {
    net::ReliableClient::Config ccfg;
    ccfg.endpoint = {"127.0.0.1", server.port()};
    ccfg.framer_factory = *factory;
    if (faults) ccfg.connection.ops = &client_faults;
    ccfg.backoff.initial = std::chrono::milliseconds(
        opts.backoff_ms > 0 ? opts.backoff_ms : 5);
    if (ccfg.backoff.initial > ccfg.backoff.cap) {
      ccfg.backoff.cap = ccfg.backoff.initial;
    }
    // --retry bounds how long a client keeps re-dialing (0 = forever).
    if (opts.retry_set) {
      ccfg.lifetime = std::chrono::milliseconds(opts.retry_ms);
    }
    ccfg.max_unacked = msgs;
    ccfg.seed = opts.fault_seed + i;
    SoakClient& state = clients[i];
    state.client = std::make_unique<net::ReliableClient>(
        *loops[i % n_loops], *protocol, ccfg);
    state.client->on_message([&state](Expected<InstPtr> msg) {
      if (!msg.ok()) return;
      state.client->ack(++state.confirmed);
      state.acked.store(state.client->stats().acked);
    });
    state.client->on_gave_up(
        [&state](const Error&) { state.gave_up.store(true); });
  }

  std::vector<std::thread> threads;
  for (auto& loop : loops) {
    threads.emplace_back([&loop] { loop->run(); });
  }
  const auto started = std::chrono::steady_clock::now();
  for (std::size_t i = 0; i < conns; ++i) {
    SoakClient& state = clients[i];
    loops[i % n_loops]->post([&state, &graph, seed = opts.msg_seed + i, msgs] {
      state.client->start();
      Rng rng(seed);
      for (std::uint64_t m = 0; m < msgs; ++m) {
        InstPtr msg = fuzz::random_message(graph, rng);
        (void)state.client->send(*msg);
      }
    });
  }

  const auto deadline =
      started + std::chrono::milliseconds(30000 + 25 * conns);
  auto done = [&] {
    for (const SoakClient& state : clients) {
      if (state.gave_up.load()) return true;  // fail fast below
      if (state.acked.load() < msgs) return false;
    }
    return true;
  };
  while (!done() && std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  const double elapsed_ms =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - started)
          .count();

  std::size_t complete = 0;
  std::uint64_t gave_up = 0;
  // Recovery counters live on the loop threads; read them there too.
  std::atomic<std::uint64_t> dials{0};
  std::atomic<std::uint64_t> reconnects{0};
  std::atomic<std::uint64_t> resent{0};
  std::atomic<std::size_t> stopped{0};
  for (std::size_t i = 0; i < conns; ++i) {
    SoakClient& state = clients[i];
    if (state.gave_up.load()) ++gave_up;
    if (state.acked.load() >= msgs) ++complete;
    loops[i % n_loops]->post([&state, &stopped, &dials, &reconnects,
                              &resent] {
      const net::ReliableClient::Stats& cs = state.client->stats();
      dials.fetch_add(cs.dials);
      reconnects.fetch_add(cs.reconnects);
      resent.fetch_add(cs.resent);
      state.client->stop();
      stopped.fetch_add(1);
    });
  }
  const auto stop_deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (stopped.load() < conns &&
         std::chrono::steady_clock::now() < stop_deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  server.drain(std::chrono::milliseconds(5000));
  for (auto& loop : loops) loop->stop();
  for (auto& thread : threads) thread.join();
  clients.clear();  // after their loops stopped

  std::printf(
      "soak: %zu/%zu clients confirmed %llu msgs in %.0f ms "
      "(%llu gave up)\n",
      complete, conns, static_cast<unsigned long long>(msgs), elapsed_ms,
      static_cast<unsigned long long>(gave_up));
  std::printf(
      "recovery: %llu dials, %llu reconnects, %llu resends, "
      "%llu server receipts\n",
      static_cast<unsigned long long>(dials.load()),
      static_cast<unsigned long long>(reconnects.load()),
      static_cast<unsigned long long>(resent.load()),
      static_cast<unsigned long long>(server_msgs.load()));
  if (faults) {
    const net::FaultInjector::Stats sf = server_faults.stats();
    const net::FaultInjector::Stats cf = client_faults.stats();
    std::printf(
        "faults: %llu kills, %llu short reads, %llu short writes, "
        "%llu EAGAIN, %llu dials refused\n",
        static_cast<unsigned long long>(server_faults.kills() +
                                        client_faults.kills()),
        static_cast<unsigned long long>(sf.short_reads + cf.short_reads),
        static_cast<unsigned long long>(sf.short_writes + cf.short_writes),
        static_cast<unsigned long long>(sf.eagains + cf.eagains),
        static_cast<unsigned long long>(cf.refused));
  }
  if (!opts.no_metrics) {
    const obs::Histogram::Snapshot parse =
        obs::SessionMetrics::get().parse_ns.snapshot();
    const obs::Histogram::Snapshot serialize =
        obs::SessionMetrics::get().serialize_ns.snapshot();
    std::printf(
        "latency (1/64 sampled): parse p50=%.1fus p95=%.1fus p99=%.1fus, "
        "serialize p50=%.1fus p95=%.1fus p99=%.1fus\n",
        parse.p50 / 1e3, parse.p95 / 1e3, parse.p99 / 1e3,
        serialize.p50 / 1e3, serialize.p95 / 1e3, serialize.p99 / 1e3);
  }
  return complete == conns ? 0 : 1;
}

// --- top --------------------------------------------------------------------

/// One blocking HTTP/1.0 GET against the admin endpoint. Deliberately
/// plain BSD sockets: `top` is the observer and must not depend on the
/// event-loop machinery it is observing.
Expected<std::string> http_get(const std::string& host, std::uint16_t port,
                               const std::string& path) {
  addrinfo hints{};
  hints.ai_family = AF_UNSPEC;
  hints.ai_socktype = SOCK_STREAM;
  addrinfo* res = nullptr;
  const std::string service = std::to_string(port);
  if (const int rc =
          ::getaddrinfo(host.c_str(), service.c_str(), &hints, &res);
      rc != 0) {
    return Unexpected("resolve " + host + ": " + ::gai_strerror(rc));
  }
  int fd = -1;
  for (addrinfo* ai = res; ai != nullptr; ai = ai->ai_next) {
    fd = ::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol);
    if (fd < 0) continue;
    if (::connect(fd, ai->ai_addr, ai->ai_addrlen) == 0) break;
    ::close(fd);
    fd = -1;
  }
  ::freeaddrinfo(res);
  if (fd < 0) {
    return Unexpected("connect " + host + ":" + service + ": " +
                      std::strerror(errno));
  }
  const std::string request = "GET " + path + " HTTP/1.0\r\nHost: " + host +
                              "\r\nConnection: close\r\n\r\n";
  for (std::size_t off = 0; off < request.size();) {
    const ssize_t n =
        ::send(fd, request.data() + off, request.size() - off, MSG_NOSIGNAL);
    if (n <= 0) {
      ::close(fd);
      return Unexpected("send: " + std::string(std::strerror(errno)));
    }
    off += static_cast<std::size_t>(n);
  }
  std::string response;
  char buf[4096];
  for (;;) {
    const ssize_t n = ::recv(fd, buf, sizeof buf, 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      return Unexpected("recv: " + std::string(std::strerror(errno)));
    }
    if (n == 0) break;
    response.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);
  const std::size_t header_end = response.find("\r\n\r\n");
  if (header_end == std::string::npos) {
    return Unexpected("malformed HTTP response");
  }
  const std::string status_line = response.substr(0, response.find("\r\n"));
  if (status_line.find(" 200 ") == std::string::npos) {
    return Unexpected("HTTP error: " + status_line);
  }
  return response.substr(header_end + 4);
}

/// Quantile summary of one histogram series in the snapshot.
struct HistRow {
  double count = 0, sum = 0, max = 0, mean = 0, p50 = 0, p95 = 0, p99 = 0;
};

/// The flat shape /metrics.json serves (see MetricsRegistry::
/// json_snapshot). Keys are full Prometheus series names.
struct FlatSnapshot {
  std::map<std::string, double> counters;
  std::map<std::string, double> gauges;
  std::map<std::string, HistRow> hists;
};

/// Minimal scanner for the snapshot's fixed two-level shape — objects of
/// numbers, one extra nesting level under "histograms", string keys with
/// backslash escapes. Not a general JSON parser and not meant to be one.
class SnapshotParser {
 public:
  explicit SnapshotParser(const std::string& text) : s_(text) {}

  bool parse(FlatSnapshot& out) {
    if (!consume('{')) return false;
    if (consume('}')) return true;
    do {
      std::string section;
      if (!string(section) || !consume(':')) return false;
      if (section == "histograms") {
        if (!hist_section(out)) return false;
      } else if (!number_section(section == "counters" ? out.counters
                                                       : out.gauges)) {
        return false;
      }
    } while (consume(','));
    return consume('}');
  }

 private:
  char peek() {
    while (i_ < s_.size() &&
           std::isspace(static_cast<unsigned char>(s_[i_]))) {
      ++i_;
    }
    return i_ < s_.size() ? s_[i_] : '\0';
  }
  bool consume(char c) {
    if (peek() != c) return false;
    ++i_;
    return true;
  }

  bool string(std::string& out) {
    if (!consume('"')) return false;
    out.clear();
    while (i_ < s_.size()) {
      const char c = s_[i_++];
      if (c == '"') return true;
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (i_ >= s_.size()) return false;
      const char esc = s_[i_++];
      switch (esc) {
        case 'n': out.push_back('\n'); break;
        case 't': out.push_back('\t'); break;
        case 'r': out.push_back('\r'); break;
        case 'u': i_ += 4; out.push_back('?'); break;
        default: out.push_back(esc); break;  // \" \\ \/ pass through
      }
    }
    return false;
  }

  bool number(double& out) {
    peek();  // position past whitespace
    const char* begin = s_.c_str() + i_;
    char* end = nullptr;
    out = std::strtod(begin, &end);
    if (end == begin) return false;
    i_ += static_cast<std::size_t>(end - begin);
    return true;
  }

  bool number_section(std::map<std::string, double>& out) {
    if (!consume('{')) return false;
    if (consume('}')) return true;
    do {
      std::string key;
      double value = 0;
      if (!string(key) || !consume(':') || !number(value)) return false;
      out[key] = value;
    } while (consume(','));
    return consume('}');
  }

  bool hist_section(FlatSnapshot& out) {
    if (!consume('{')) return false;
    if (consume('}')) return true;
    do {
      std::string key;
      if (!string(key) || !consume(':')) return false;
      std::map<std::string, double> fields;
      if (!number_section(fields)) return false;
      HistRow row;
      row.count = fields["count"];
      row.sum = fields["sum"];
      row.max = fields["max"];
      row.mean = fields["mean"];
      row.p50 = fields["p50"];
      row.p95 = fields["p95"];
      row.p99 = fields["p99"];
      out.hists[key] = row;
    } while (consume(','));
    return consume('}');
  }

  const std::string& s_;
  std::size_t i_ = 0;
};

double value_or(const std::map<std::string, double>& m,
                const std::string& key) {
  const auto it = m.find(key);
  return it != m.end() ? it->second : 0.0;
}

std::string shard_series(const char* name, const std::string& shard) {
  return std::string(name) + "{shard=\"" + shard + "\"}";
}

void render_top(const Options& opts, const FlatSnapshot& snap,
                const FlatSnapshot* prev, double dt,
                std::uint64_t poll) {
  std::string out;
  char line[512];
  const auto emit = [&](const char* fmt, auto... args) {
    std::snprintf(line, sizeof line, fmt, args...);
    out += line;
  };
  if (!opts.once) out += "\x1b[H\x1b[2J";  // home + clear for the redraw
  emit("protoobf top - %s:%u  poll #%llu  (refresh %.1fs, q: Ctrl-C)\n\n",
       opts.host.c_str(), opts.port,
       static_cast<unsigned long long>(poll),
       static_cast<double>(opts.interval_ms) / 1000.0);

  // Shard rows come from the label sets actually registered: numeric
  // server shards first, then the client-side bundle.
  std::vector<std::string> shards;
  const std::string probe =
      "protoobf_net_connections_accepted_total{shard=\"";
  for (const auto& [key, value] : snap.counters) {
    if (key.rfind(probe, 0) != 0) continue;
    const std::size_t end = key.find('"', probe.size());
    if (end == std::string::npos) continue;
    shards.push_back(key.substr(probe.size(), end - probe.size()));
  }
  const auto rank = [](const std::string& s) {
    const bool numeric =
        !s.empty() && std::isdigit(static_cast<unsigned char>(s[0]));
    return std::make_pair(numeric ? 0 : 1,
                          numeric ? std::atol(s.c_str()) : 0L);
  };
  std::sort(shards.begin(), shards.end(),
            [&](const std::string& a, const std::string& b) {
              return rank(a) < rank(b);
            });

  emit("%-7s %7s %9s %8s %6s %11s %11s %9s %13s %13s %11s\n", "SHARD",
       "ACTIVE", "ACCEPTED", "CLOSED", "SHED", "MSGS_IN", "MSGS_OUT",
       "MSG/S", "BYTES_IN", "BYTES_OUT", "FRAME_P95");
  double total_active = 0, total_msgs_in = 0, total_rate = 0;
  for (const std::string& shard : shards) {
    const double msgs_in = value_or(
        snap.counters, shard_series("protoobf_net_messages_in_total", shard));
    double rate = 0;
    if (prev != nullptr && dt > 0) {
      rate = (msgs_in -
              value_or(prev->counters,
                       shard_series("protoobf_net_messages_in_total", shard))) /
             dt;
    }
    const double active = value_or(
        snap.gauges, shard_series("protoobf_net_connections_active", shard));
    const auto frame =
        snap.hists.find(shard_series("protoobf_net_frame_ns", shard));
    const double p95_us =
        frame != snap.hists.end() ? frame->second.p95 / 1e3 : 0.0;
    emit("%-7s %7.0f %9.0f %8.0f %6.0f %11.0f %11.0f %9.1f %13.0f %13.0f "
         "%9.0fus\n",
         shard.c_str(), active,
         value_or(snap.counters,
                  shard_series("protoobf_net_connections_accepted_total",
                               shard)),
         value_or(snap.counters,
                  shard_series("protoobf_net_connections_closed_total",
                               shard)),
         value_or(snap.counters,
                  shard_series("protoobf_net_connections_shed_total", shard)),
         msgs_in,
         value_or(snap.counters,
                  shard_series("protoobf_net_messages_out_total", shard)),
         rate,
         value_or(snap.counters,
                  shard_series("protoobf_net_bytes_in_total", shard)),
         value_or(snap.counters,
                  shard_series("protoobf_net_bytes_out_total", shard)),
         p95_us);
    total_active += active;
    total_msgs_in += msgs_in;
    total_rate += rate;
  }
  emit("%-7s %7.0f %9s %8s %6s %11.0f %11s %9.1f\n\n", "TOTAL", total_active,
       "", "", "", total_msgs_in, "", total_rate);

  const auto hist = [&](const char* name) {
    const auto it = snap.hists.find(name);
    return it != snap.hists.end() ? it->second : HistRow{};
  };
  const HistRow serialize = hist("protoobf_session_serialize_ns");
  const HistRow parse = hist("protoobf_session_parse_ns");
  emit("session    serialized %.0f (p50 %.1fus p99 %.1fus)  parsed %.0f "
       "(p50 %.1fus p99 %.1fus)  cache hit/miss %.0f/%.0f\n",
       value_or(snap.counters, "protoobf_session_serialized_total"),
       serialize.p50 / 1e3, serialize.p99 / 1e3,
       value_or(snap.counters, "protoobf_session_parsed_total"),
       parse.p50 / 1e3, parse.p99 / 1e3,
       value_or(snap.counters, "protoobf_session_protocol_cache_hits_total"),
       value_or(snap.counters,
                "protoobf_session_protocol_cache_misses_total"));
  const HistRow compile = hist("protoobf_native_compile_ns");
  emit("native     hits %.0f  disk %.0f  recompiles %.0f (p50 %.0fms)  "
       "poisoned %.0f\n",
       value_or(snap.counters, "protoobf_native_cache_hits_total"),
       value_or(snap.counters, "protoobf_native_disk_hits_total"),
       value_or(snap.counters, "protoobf_native_recompiles_total"),
       compile.p50 / 1e6,
       value_or(snap.counters, "protoobf_native_poisoned_total"));
  emit("reconnect  sent %.0f  resent %.0f  acked %.0f  dials %.0f  "
       "reconnects %.0f  unacked %.0f\n",
       value_or(snap.counters, "protoobf_reconnect_sent_total"),
       value_or(snap.counters, "protoobf_reconnect_resent_total"),
       value_or(snap.counters, "protoobf_reconnect_acked_total"),
       value_or(snap.counters, "protoobf_reconnect_dials_total"),
       value_or(snap.counters, "protoobf_reconnect_reconnects_total"),
       value_or(snap.gauges, "protoobf_reconnect_unacked"));
  double faults = 0;
  for (const auto& [key, value] : snap.counters) {
    if (key.rfind("protoobf_fault_injected_total{", 0) == 0) faults += value;
  }
  emit("resume     attempts %.0f  resumed %.0f  suspensions %.0f  "
       "scanned %.0fB   faults injected %.0f\n",
       value_or(snap.counters, "protoobf_resume_attempts_total"),
       value_or(snap.counters, "protoobf_resume_resumed_total"),
       value_or(snap.counters, "protoobf_resume_suspensions_total"),
       value_or(snap.counters, "protoobf_resume_scanned_bytes_total"),
       faults);
  std::fwrite(out.data(), 1, out.size(), stdout);
  std::fflush(stdout);
}

int cmd_top(const Options& opts) {
  if (opts.port == 0) {
    std::fprintf(stderr,
                 "error: top requires --port (the metrics endpoint a "
                 "running serve/soak printed)\n");
    return 2;
  }
  std::signal(SIGINT, stop_signal);
  std::signal(SIGTERM, stop_signal);
  const auto interval = std::chrono::milliseconds(
      opts.interval_ms > 0 ? opts.interval_ms : 1000);

  FlatSnapshot prev;
  bool have_prev = false;
  std::uint64_t prev_ns = 0;
  std::uint64_t polls = 0;
  while (g_stop_signal.load() == 0) {
    auto body = http_get(opts.host, opts.port, "/metrics.json");
    if (!body.ok()) {
      std::fprintf(stderr, "error: %s\n", body.error().message.c_str());
      return 1;
    }
    FlatSnapshot snap;
    if (!SnapshotParser(*body).parse(snap)) {
      std::fprintf(stderr, "error: malformed /metrics.json snapshot\n");
      return 1;
    }
    const std::uint64_t now = obs::now_ns();
    ++polls;
    render_top(opts, snap, have_prev ? &prev : nullptr,
               static_cast<double>(now - prev_ns) / 1e9, polls);
    if (opts.once) return 0;
    prev = std::move(snap);
    have_prev = true;
    prev_ns = now;
    for (auto waited = std::chrono::milliseconds(0);
         waited < interval && g_stop_signal.load() == 0;
         waited += std::chrono::milliseconds(50)) {
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }
  }
  return 0;
}

int cmd_fuzz(const Options& opts) {
  auto graph = load(opts.spec_path);
  if (!graph.ok()) {
    std::fprintf(stderr, "error: %s\n", graph.error().message.c_str());
    return 1;
  }
  ObfuscationConfig cfg;
  cfg.seed = opts.seed;
  cfg.per_node = opts.per_node;
  auto compiled = Framework::generate(*graph, cfg);
  if (!compiled.ok()) {
    std::fprintf(stderr, "error: %s\n", compiled.error().message.c_str());
    return 1;
  }

  // Campaign RNG: --msg-seed, overridable by PROTOOBF_FUZZ_SEED (the same
  // env the test suites honor, so a CI failure line reproduces here too).
  std::uint64_t rng_seed = opts.msg_seed;
  if (const char* env = std::getenv("PROTOOBF_FUZZ_SEED");
      env != nullptr && *env != '\0') {
    rng_seed = std::strtoull(env, nullptr, 0);
  }

  auto mutator = fuzz::WireMutator::create(*compiled, rng_seed);
  if (!mutator.ok()) {
    std::fprintf(stderr, "error: %s\n", mutator.error().message.c_str());
    return 1;
  }

  const bool prefix_capable = stream_safe(compiled->wire_graph()).ok();
  if (opts.chunked && !prefix_capable) {
    std::fprintf(stderr,
                 "error: --chunked needs a stream-safe wire format and "
                 "this compilation is not (try --whole)\n");
    return 1;
  }
  fuzz::FuzzRunner::Config run_cfg;
  run_cfg.whole_message = opts.whole || !prefix_capable;
  fuzz::FuzzRunner runner(*compiled, run_cfg);

  // Campaign header carries the static analyzer's verdict, so a crasher
  // found today records whether the spec was lint-clean when it was found
  // (the static/dynamic cross-oracle's paper trail).
  std::printf("lint: %s\n", analysis::summary(runner.lint()).c_str());

  Rng chunks(rng_seed ^ 0xC4A7);
  for (std::size_t i = 0; i < opts.iters; ++i) {
    const fuzz::Mutant m = mutator->next();
    const std::string violation = runner.check(m.wire, chunks);
    if (!violation.empty()) {
      std::fprintf(stderr,
                   "VIOLATION at iter %zu (strategy %s): %s\n%s"
                   "reproduce with PROTOOBF_FUZZ_SEED=%llu\n",
                   i, m.strategy, violation.c_str(),
                   hexdump(m.wire).c_str(),
                   static_cast<unsigned long long>(rng_seed));
      return 1;
    }
  }

  const fuzz::FuzzRunner::Totals& t = runner.totals();
  std::printf(
      "fuzzed %llu inputs (%s): %llu parsed, %llu truncated, %llu "
      "malformed, 0 violations\n",
      static_cast<unsigned long long>(t.inputs),
      run_cfg.whole_message ? "whole-message" : "chunk-split resumed",
      static_cast<unsigned long long>(t.parsed),
      static_cast<unsigned long long>(t.truncated),
      static_cast<unsigned long long>(t.malformed));
  if (!run_cfg.whole_message) {
    std::printf("resume: %llu attempts, %llu resumed, %llu suspensions\n",
                static_cast<unsigned long long>(runner.resume_stats().attempts),
                static_cast<unsigned long long>(runner.resume_stats().resumed),
                static_cast<unsigned long long>(
                    runner.resume_stats().suspensions));
  }
  std::printf("pool: %zu slabs, %zu live (rng seed %llu)\n",
              runner.arena().nodes().stats().slabs,
              runner.arena().nodes().stats().live,
              static_cast<unsigned long long>(rng_seed));
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  Options opts;
  if (!parse_args(argc, argv, opts)) return usage();
  if (opts.command == "validate") return cmd_validate(opts);
  if (opts.command == "lint") return cmd_lint(opts);
  if (opts.command == "graph") return cmd_graph(opts);
  if (opts.command == "obfuscate") return cmd_obfuscate(opts);
  if (opts.command == "codegen") return cmd_codegen(opts);
  if (opts.command == "compile") return cmd_compile(opts);
  if (opts.command == "stream") return cmd_stream(opts);
  if (opts.command == "serve") return cmd_serve(opts);
  if (opts.command == "connect") return cmd_connect(opts);
  if (opts.command == "soak") return cmd_soak(opts);
  if (opts.command == "fuzz") return cmd_fuzz(opts);
  if (opts.command == "top") return cmd_top(opts);
  return usage();
}
