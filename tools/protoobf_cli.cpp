// protoobf — command-line front end to the framework.
//
// Commands:
//   protoobf validate <spec-file>
//       Parse and validate a specification; print the graph outline.
//   protoobf graph <spec-file> [--obfuscate SEED:PER_NODE]
//       Print the (optionally obfuscated) message format graph in DOT.
//   protoobf obfuscate <spec-file> --seed N --per-node K
//       Apply transformations; print the journal and the resulting graph.
//   protoobf codegen <spec-file> --seed N --per-node K [-o out.cpp]
//       Generate the serializer/parser library; print the complexity
//       metrics of §VII-B.
//   protoobf stream <spec-file> [--seed N --per-node K] [--emit COUNT]
//       Framed-stream filter over stdin/stdout (src/stream's Channel).
//       With --emit, writes COUNT framed random messages to stdout;
//       without, reassembles frames from stdin (any chunking) and prints
//       one line per recovered message. The two ends pipe together:
//         protoobf stream p.spec --emit 20 | protoobf stream p.spec
//       --frame-width W picks the length-prefix width; --obf-frame S:K
//       obfuscates the framing layer itself (both ends must agree).
//   protoobf serve <spec-file> [--seed N --per-node K] [--port P]
//       Obfuscated echo server (src/net): accepts TCP connections, parses
//       every framed message and serializes it right back. --shards N runs
//       N event-loop threads (SO_REUSEPORT); --round-robin switches to a
//       single acceptor handing connections across shards; --idle-ms
//       closes silent connections. Prints "listening on HOST:PORT" once
//       ready. Stop with SIGINT/SIGTERM.
//   protoobf connect <spec-file> --port P --emit COUNT [--expect COUNT]
//       Client peer for serve: dials, sends COUNT framed random messages,
//       counts the echoes. --retry-ms keeps dialing a not-yet-listening
//       server. Both ends must agree on spec, --seed/--per-node and the
//       framing flags (--frame-width / --obf-frame).
//   protoobf compile <spec-file> --seed N --per-node K
//       Pre-build the native unit for (spec, seed, per_node) into the
//       shared on-disk cache ($PROTOOBF_NATIVE_CACHE, default
//       /tmp/protoobf-native-<uid>) and print its path and cache key.
//       Later serve/connect/stream runs with --native hit the artifact
//       without paying the compile on the serving path.
//
// stream/serve/connect accept --native: parse/serialize through the
// compiled generated unit instead of the interpreter (identical bytes,
// see src/native/). When no toolchain is available in this environment —
// no `c++` on PATH, or a build mode whose objects cannot be dlopen'd —
// the command says so and falls back to the interpreter.
//
// Spec files use the ProtoSpec language (see README.md).
#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <thread>
#include <unordered_map>
#include <unordered_set>

#include "codegen/generator.hpp"
#include "core/protoobf.hpp"
#include "fuzz/mutator.hpp"
#include "fuzz/random_message.hpp"
#include "fuzz/runner.hpp"
#include "native/cache.hpp"
#include "net/connector.hpp"
#include "net/server.hpp"
#include "runtime/parse.hpp"
#include "session/protocol_cache.hpp"
#include "stream/channel.hpp"

namespace {

using namespace protoobf;

int usage() {
  std::fprintf(
      stderr,
      "usage: protoobf <validate|graph|obfuscate|codegen|compile|stream|"
      "serve|connect|fuzz> <spec-file> [--seed N] [--per-node K] [-o FILE]\n"
      "       stream extras: [--emit COUNT] [--expect COUNT] "
      "[--msg-seed N] [--frame-width W] "
      "[--obf-frame SEED:PER_NODE] [--dump]\n"
      "       stream/serve/connect: [--native]  (serve from the compiled "
      "generated unit; falls back to the interpreter without a toolchain)\n"
      "       fuzz extras: [--iters N] [--chunked] [--whole] "
      "[--msg-seed N]  (env: PROTOOBF_FUZZ_SEED overrides --msg-seed)\n"
      "       serve extras: [--host H] [--port P] [--shards N] "
      "[--round-robin] [--idle-ms N]\n"
      "       connect extras: [--host H] [--port P] [--emit COUNT] "
      "[--expect COUNT] [--msg-seed N] [--retry-ms N]\n");
  return 2;
}

struct Options {
  std::string command;
  std::string spec_path;
  std::uint64_t seed = 1;
  int per_node = 1;
  std::string output;
  // stream command
  std::size_t emit = 0;         // 0 = decode mode
  std::size_t expect = 0;       // decode: fail unless exactly N recovered
  std::uint64_t msg_seed = 42;  // message randomness for --emit
  std::size_t frame_width = 4;
  bool obf_frame = false;
  std::uint64_t obf_frame_seed = 13;
  int obf_frame_per_node = 2;
  bool dump = false;
  // serve / connect
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;  // serve: 0 = ephemeral; connect: required
  std::size_t shards = 1;
  bool round_robin = false;
  std::size_t idle_ms = 0;
  std::size_t retry_ms = 2000;
  // fuzz
  std::size_t iters = 1000;
  bool chunked = false;  // force the chunk-split resume replay
  bool whole = false;    // force whole-message parses (no prefix replay)
  // native backend (stream/serve/connect)
  bool native = false;
};

bool parse_args(int argc, char** argv, Options& opts) {
  if (argc < 3) return false;
  opts.command = argv[1];
  opts.spec_path = argv[2];
  for (int i = 3; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--seed" && i + 1 < argc) {
      opts.seed = std::strtoull(argv[++i], nullptr, 0);
    } else if (arg == "--per-node" && i + 1 < argc) {
      opts.per_node = std::atoi(argv[++i]);
    } else if (arg == "-o" && i + 1 < argc) {
      opts.output = argv[++i];
    } else if (arg == "--emit" && i + 1 < argc) {
      opts.emit = static_cast<std::size_t>(std::strtoull(argv[++i], nullptr, 0));
    } else if (arg == "--expect" && i + 1 < argc) {
      opts.expect =
          static_cast<std::size_t>(std::strtoull(argv[++i], nullptr, 0));
    } else if (arg == "--msg-seed" && i + 1 < argc) {
      opts.msg_seed = std::strtoull(argv[++i], nullptr, 0);
    } else if (arg == "--frame-width" && i + 1 < argc) {
      opts.frame_width =
          static_cast<std::size_t>(std::strtoull(argv[++i], nullptr, 0));
    } else if (arg == "--obf-frame" && i + 1 < argc) {
      opts.obf_frame = true;
      const std::string value = argv[++i];
      const std::size_t colon = value.find(':');
      opts.obf_frame_seed = std::strtoull(value.c_str(), nullptr, 0);
      if (colon != std::string::npos) {
        opts.obf_frame_per_node = std::atoi(value.c_str() + colon + 1);
      }
    } else if (arg == "--dump") {
      opts.dump = true;
    } else if (arg == "--host" && i + 1 < argc) {
      opts.host = argv[++i];
    } else if (arg == "--port" && i + 1 < argc) {
      const unsigned long value = std::strtoul(argv[++i], nullptr, 0);
      if (value > 65535) {
        std::fprintf(stderr, "--port out of range: %lu\n", value);
        return false;
      }
      opts.port = static_cast<std::uint16_t>(value);
    } else if (arg == "--shards" && i + 1 < argc) {
      opts.shards = static_cast<std::size_t>(std::strtoull(argv[++i], nullptr, 0));
    } else if (arg == "--round-robin") {
      opts.round_robin = true;
    } else if (arg == "--idle-ms" && i + 1 < argc) {
      opts.idle_ms = static_cast<std::size_t>(std::strtoull(argv[++i], nullptr, 0));
    } else if (arg == "--retry-ms" && i + 1 < argc) {
      opts.retry_ms = static_cast<std::size_t>(std::strtoull(argv[++i], nullptr, 0));
    } else if (arg == "--iters" && i + 1 < argc) {
      opts.iters = static_cast<std::size_t>(std::strtoull(argv[++i], nullptr, 0));
    } else if (arg == "--chunked") {
      opts.chunked = true;
    } else if (arg == "--whole") {
      opts.whole = true;
    } else if (arg == "--native") {
      opts.native = true;
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", arg.c_str());
      return false;
    }
  }
  return true;
}

Expected<std::string> read_text(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Unexpected("cannot open '" + path + "'");
  std::ostringstream text;
  text << in.rdbuf();
  return text.str();
}

Expected<Graph> load(const std::string& path) {
  auto text = read_text(path);
  if (!text.ok()) return Unexpected(text.error());
  return Framework::load_spec(*text);
}

// --- native backend ---------------------------------------------------------

/// --native: build (or reuse from the shared on-disk cache) the compiled
/// generated unit for this exact (spec, seed, per_node) and attach it, so
/// the command's default parse/serialize entry points serve natively.
/// Degrades to the interpreter with an explanation when the environment
/// has no usable toolchain or the build fails — never hard-errors, because
/// the interpreted path is always correct.
void maybe_attach_native(const ObfuscatedProtocol& protocol,
                         const Options& opts) {
  if (!opts.native) return;
  if (!native::NativeCompiler::toolchain_available()) {
    std::fprintf(stderr, "--native unavailable (%s); serving interpreted\n",
                 native::NativeCompiler::toolchain_status().c_str());
    return;
  }
  auto text = read_text(opts.spec_path);
  if (!text.ok()) {
    std::fprintf(stderr, "--native failed (%s); serving interpreted\n",
                 text.error().message.c_str());
    return;
  }
  ObfuscationConfig cfg;
  cfg.seed = opts.seed;
  cfg.per_node = opts.per_node;
  // The cache object is transient; the attached backend keeps the .so
  // mapped for as long as the protocol serves from it.
  native::NativeCache cache;
  auto backend =
      cache.get_or_compile(protocol, ProtocolCache::hash_spec(*text), cfg);
  if (!backend.ok()) {
    std::fprintf(stderr, "--native build failed (%s); serving interpreted\n",
                 backend.error().message.c_str());
    return;
  }
  const std::string& so = (*backend)->unit().path();
  protocol.attach_wire_backend(*backend);
  std::fprintf(stderr, "native unit attached: %s\n", so.c_str());
}

int cmd_compile(const Options& opts) {
  auto text = read_text(opts.spec_path);
  if (!text.ok()) {
    std::fprintf(stderr, "error: %s\n", text.error().message.c_str());
    return 1;
  }
  auto graph = Framework::load_spec(*text);
  if (!graph.ok()) {
    std::fprintf(stderr, "error: %s\n", graph.error().message.c_str());
    return 1;
  }
  ObfuscationConfig cfg;
  cfg.seed = opts.seed;
  cfg.per_node = opts.per_node;
  auto protocol = Framework::generate(*graph, cfg);
  if (!protocol.ok()) {
    std::fprintf(stderr, "error: %s\n", protocol.error().message.c_str());
    return 1;
  }
  if (!native::NativeCompiler::toolchain_available()) {
    std::fprintf(stderr, "error: no usable native toolchain: %s\n",
                 native::NativeCompiler::toolchain_status().c_str());
    return 1;
  }
  const std::uint64_t spec_hash = ProtocolCache::hash_spec(*text);
  native::NativeCompiler compiler;
  auto built = compiler.compile(
      *protocol,
      native::NativeCompiler::cache_file_base(
          *protocol, spec_hash, opts.seed,
          static_cast<std::size_t>(opts.per_node)));
  if (!built.ok()) {
    std::fprintf(stderr, "error: %s\n", built.error().message.c_str());
    return 1;
  }
  std::printf("unit: %s\n", built->unit->path().c_str());
  std::printf("key: spec %016llx seed %llu per-node %d, fingerprint %016llx\n",
              static_cast<unsigned long long>(spec_hash),
              static_cast<unsigned long long>(opts.seed), opts.per_node,
              static_cast<unsigned long long>(built->unit->fingerprint()));
  if (built->disk_hit) {
    std::printf("cache hit: reused the on-disk unit, no compile\n");
  } else {
    std::printf("%s in %.0f ms\n",
                built->recompiled ? "recompiled (stale or corrupt artifact)"
                                  : "compiled",
                built->compile_ms);
  }
  return 0;
}

int cmd_validate(const Options& opts) {
  auto graph = load(opts.spec_path);
  if (!graph.ok()) {
    std::fprintf(stderr, "error: %s\n", graph.error().message.c_str());
    return 1;
  }
  std::printf("protocol '%s': %zu nodes, depth %zu — OK\n\n",
              graph->protocol_name().c_str(), graph->size(), graph->depth());
  std::fputs(to_outline(*graph).c_str(), stdout);
  return 0;
}

int cmd_graph(const Options& opts) {
  auto graph = load(opts.spec_path);
  if (!graph.ok()) {
    std::fprintf(stderr, "error: %s\n", graph.error().message.c_str());
    return 1;
  }
  if (opts.per_node > 0) {
    ObfuscationConfig cfg;
    cfg.seed = opts.seed;
    cfg.per_node = opts.per_node;
    auto protocol = Framework::generate(*graph, cfg);
    if (!protocol.ok()) {
      std::fprintf(stderr, "error: %s\n", protocol.error().message.c_str());
      return 1;
    }
    std::fputs(to_dot(protocol->wire_graph()).c_str(), stdout);
  } else {
    std::fputs(to_dot(*graph).c_str(), stdout);
  }
  return 0;
}

int cmd_obfuscate(const Options& opts) {
  auto graph = load(opts.spec_path);
  if (!graph.ok()) {
    std::fprintf(stderr, "error: %s\n", graph.error().message.c_str());
    return 1;
  }
  ObfuscationConfig cfg;
  cfg.seed = opts.seed;
  cfg.per_node = opts.per_node;
  auto protocol = Framework::generate(*graph, cfg);
  if (!protocol.ok()) {
    std::fprintf(stderr, "error: %s\n", protocol.error().message.c_str());
    return 1;
  }
  std::printf("# %zu transformations (seed %llu, %d per node)\n",
              protocol->journal().size(),
              static_cast<unsigned long long>(opts.seed), opts.per_node);
  for (const auto& entry : protocol->journal()) {
    std::printf("%s\n", entry.describe(protocol->wire_graph()).c_str());
  }
  std::printf("\n# obfuscated message format\n%s",
              to_outline(protocol->wire_graph()).c_str());
  return 0;
}

int cmd_codegen(const Options& opts) {
  auto graph = load(opts.spec_path);
  if (!graph.ok()) {
    std::fprintf(stderr, "error: %s\n", graph.error().message.c_str());
    return 1;
  }
  ObfuscationConfig cfg;
  cfg.seed = opts.seed;
  cfg.per_node = opts.per_node;
  auto protocol = Framework::generate(*graph, cfg);
  if (!protocol.ok()) {
    std::fprintf(stderr, "error: %s\n", protocol.error().message.c_str());
    return 1;
  }
  const GeneratedCode code = generate_cpp(*protocol);
  std::fprintf(stderr,
               "# %zu lines, %zu structs, call graph size %zu, depth %zu\n",
               code.metrics.lines, code.metrics.structs,
               code.metrics.callgraph_size, code.metrics.callgraph_depth);
  if (opts.output.empty()) {
    std::fputs(code.source.c_str(), stdout);
  } else {
    std::ofstream out(opts.output);
    out << code.source;
    std::fprintf(stderr, "# wrote %s\n", opts.output.c_str());
  }
  return 0;
}

// --- stream -----------------------------------------------------------------

/// Frame spec for --obf-frame; identical on both ends of a pipe by
/// construction (obfuscation is deterministic in (spec, seed, per_node)).
constexpr std::string_view kCliFrameSpec = R"(
protocol Frame
frame: seq end {
  flen: terminal fixed(4)
  fbody: terminal length(flen)
}
)";

/// Compiled obfuscated framing layer: the shared frame protocol plus the
/// framer the validation pass already built (ready for single-channel use;
/// factory-based callers mint fresh ones per connection from `protocol`).
struct CompiledFraming {
  std::shared_ptr<const ObfuscatedProtocol> protocol;
  std::unique_ptr<ObfuscatedFramer> framer;
};

/// Compiles the CLI frame spec at the agreed (seed, per_node) and
/// validates it as a framing layer (stream-safety, payload detection) —
/// shared by the stream filter and serve/connect, so the two paths cannot
/// drift. A rejected compilation names the fix: try another seed.
Expected<CompiledFraming> compile_frame_protocol(const Options& opts) {
  auto frame_graph = Framework::load_spec(kCliFrameSpec).value();
  ObfuscationConfig fcfg;
  fcfg.seed = opts.obf_frame_seed;
  fcfg.per_node = opts.obf_frame_per_node;
  auto framing = Framework::generate(frame_graph, fcfg);
  if (!framing.ok()) return Unexpected(framing.error());
  auto shared =
      std::make_shared<const ObfuscatedProtocol>(std::move(*framing));
  auto framer = ObfuscatedFramer::create(shared);
  if (!framer.ok()) {
    return Unexpected(Error{framer.error().message +
                            " (try another --obf-frame seed)"});
  }
  return CompiledFraming{std::move(shared), std::move(*framer)};
}

int cmd_stream(const Options& opts) {
  auto graph = load(opts.spec_path);
  if (!graph.ok()) {
    std::fprintf(stderr, "error: %s\n", graph.error().message.c_str());
    return 1;
  }
  ObfuscationConfig cfg;
  cfg.seed = opts.seed;
  cfg.per_node = opts.per_node;
  auto compiled = Framework::generate(*graph, cfg);
  if (!compiled.ok()) {
    std::fprintf(stderr, "error: %s\n", compiled.error().message.c_str());
    return 1;
  }
  auto protocol =
      std::make_shared<const ObfuscatedProtocol>(std::move(*compiled));
  maybe_attach_native(*protocol, opts);

  // Framing layer: transparent length prefix, or the obfuscated frame spec
  // when both ends agreed on --obf-frame SEED:PER_NODE.
  LengthPrefixFramer::Config lp;
  lp.width = opts.frame_width;
  LengthPrefixFramer plain_framer(lp);
  std::unique_ptr<ObfuscatedFramer> obf_framer;
  if (opts.obf_frame) {
    auto framing = compile_frame_protocol(opts);
    if (!framing.ok()) {
      std::fprintf(stderr, "error: %s\n", framing.error().message.c_str());
      return 1;
    }
    obf_framer = std::move(framing->framer);
  }
  Framer& framer =
      obf_framer != nullptr ? static_cast<Framer&>(*obf_framer) : plain_framer;

  Session session(protocol);
  Channel channel(session, framer);

  if (opts.emit > 0) {
    // Emit mode: framed random messages to stdout, summary to stderr.
    Rng rng(opts.msg_seed);
    std::size_t sent = 0;
    std::size_t bytes = 0;
    for (std::size_t i = 0; i < opts.emit; ++i) {
      InstPtr msg = fuzz::random_message(*graph, rng);
      auto framed = channel.send(*msg, opts.msg_seed + i);
      if (!framed.ok()) {
        std::fprintf(stderr, "message %zu rejected: %s\n", i,
                     framed.error().message.c_str());
        continue;
      }
      std::fwrite(framed->data(), 1, framed->size(), stdout);
      ++sent;
      bytes += framed->size();
    }
    std::fflush(stdout);
    std::fprintf(stderr, "emitted %zu/%zu messages, %zu bytes\n", sent,
                 opts.emit, bytes);
    // Rejected draws are skipped by contract; only a fully dry run fails.
    return sent > 0 ? 0 : 1;
  }

  // Decode mode: reassemble whatever chunking stdin delivers.
  std::size_t received = 0;
  char chunk[4096];
  for (;;) {
    const std::size_t n = std::fread(chunk, 1, sizeof chunk, stdin);
    if (n == 0) break;
    channel.on_bytes(
        BytesView(reinterpret_cast<const Byte*>(chunk), n));
    while (auto message = channel.receive()) {
      if (!message->ok()) {
        std::fprintf(stderr, "message %zu parse error: %s\n", received,
                     (*message).error().message.c_str());
        return 1;
      }
      if (opts.dump) {
        std::fputs(ast::dump(*graph, ***message).c_str(), stdout);
      } else {
        std::printf("message %zu: %zu instances\n", received,
                    ast::count(***message));
      }
      ++received;
    }
    if (channel.failed()) {
      std::fprintf(stderr, "framing error: %s\n",
                   channel.error().message.c_str());
      return 1;
    }
  }
  if (std::ferror(stdin)) {
    std::fprintf(stderr, "read error on stdin after %zu messages\n",
                 received);
    return 1;
  }
  if (channel.reader().buffered() > 0) {
    std::fprintf(stderr, "stream ended mid-frame (%zu bytes buffered, %zu "
                 "more needed)\n",
                 channel.reader().buffered(), channel.need_bytes());
    return 1;
  }
  std::printf("recovered %zu messages\n", received);
  if (opts.expect > 0 && received != opts.expect) {
    std::fprintf(stderr, "expected %zu messages, recovered %zu\n",
                 opts.expect, received);
    return 1;
  }
  return 0;
}

// --- serve / connect --------------------------------------------------------

/// Compiles the message protocol both net commands run over.
Expected<std::shared_ptr<const ObfuscatedProtocol>> compile_protocol(
    const Options& opts) {
  auto graph = load(opts.spec_path);
  if (!graph.ok()) return Unexpected(graph.error());
  ObfuscationConfig cfg;
  cfg.seed = opts.seed;
  cfg.per_node = opts.per_node;
  auto compiled = Framework::generate(*graph, cfg);
  if (!compiled.ok()) return Unexpected(compiled.error());
  return std::make_shared<const ObfuscatedProtocol>(std::move(*compiled));
}

/// The framing layer serve/connect share with the stream filter: a
/// transparent length prefix, or the obfuscated CLI frame spec when both
/// ends agreed on --obf-frame SEED:PER_NODE.
Expected<net::FramerFactory> framer_factory_of(const Options& opts) {
  if (!opts.obf_frame) {
    LengthPrefixFramer::Config lp;
    lp.width = opts.frame_width;
    return net::length_prefix_framer_factory(lp);
  }
  auto framing = compile_frame_protocol(opts);
  if (!framing.ok()) return Unexpected(framing.error());
  return net::obfuscated_framer_factory(std::move(framing->protocol));
}

std::atomic<bool> g_stop_serving{false};

void stop_signal(int) { g_stop_serving.store(true); }

int cmd_serve(const Options& opts) {
  auto protocol = compile_protocol(opts);
  if (!protocol.ok()) {
    std::fprintf(stderr, "error: %s\n", protocol.error().message.c_str());
    return 1;
  }
  maybe_attach_native(**protocol, opts);
  auto factory = framer_factory_of(opts);
  if (!factory.ok()) {
    std::fprintf(stderr, "error: %s\n", factory.error().message.c_str());
    return 1;
  }

  net::Server::Config cfg;
  cfg.endpoint = {opts.host, opts.port};
  cfg.shards = opts.shards > 0 ? opts.shards : 1;
  cfg.reuse_port = !opts.round_robin;
  cfg.connection.idle_timeout = std::chrono::milliseconds(opts.idle_ms);

  net::Server server(*protocol, *factory, cfg);
  server.on_accept([](net::Connection& conn) {
    conn.on_message([](net::Connection& c, Expected<InstPtr> msg) {
      if (!msg.ok()) {
        std::fprintf(stderr, "fd %d: message rejected: %s\n", c.fd(),
                     msg.error().message.c_str());
        return;
      }
      // Echo with a per-connection deterministic seed so a peer (or a
      // test) can reproduce the exact bytes with a session replica.
      if (Status s = c.send(**msg, c.stats().messages_in); !s) {
        std::fprintf(stderr, "fd %d: echo failed: %s\n", c.fd(),
                     s.error().message.c_str());
        return;
      }
      // Backpressure: a peer that keeps sending but never drains its
      // echoes would grow the write queue without bound. Stop reading and
      // flush what is queued — close() caps the queue at the watermark.
      if (!c.writable()) {
        std::fprintf(stderr,
                     "fd %d: peer not draining (%zu bytes queued), "
                     "closing\n",
                     c.fd(), c.queued());
        c.close();
      }
    });
    conn.on_close([](net::Connection& c, const Error* err) {
      std::fprintf(stderr,
                   "connection closed: %llu in / %llu out msgs%s%s\n",
                   static_cast<unsigned long long>(c.stats().messages_in),
                   static_cast<unsigned long long>(c.stats().messages_out),
                   err != nullptr ? ", error: " : "",
                   err != nullptr ? err->message.c_str() : "");
    });
  });
  if (Status s = server.start(); !s) {
    std::fprintf(stderr, "error: %s\n", s.error().message.c_str());
    return 1;
  }
  std::printf("listening on %s:%u (%zu shard%s, %s, %s framing)\n",
              opts.host.c_str(), server.port(), server.shard_count(),
              server.shard_count() == 1 ? "" : "s",
              opts.round_robin ? "round-robin" : "SO_REUSEPORT",
              opts.obf_frame ? "obfuscated" : "length-prefix");
  std::fflush(stdout);

  std::signal(SIGINT, stop_signal);
  std::signal(SIGTERM, stop_signal);
  while (!g_stop_serving.load()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  const net::Server::Stats stats = server.stats();
  server.stop();
  std::fprintf(stderr, "served %llu connections (%llu rejected)\n",
               static_cast<unsigned long long>(stats.accepted),
               static_cast<unsigned long long>(stats.rejected));
  return 0;
}

int cmd_connect(const Options& opts) {
  if (opts.port == 0) {
    std::fprintf(stderr, "error: connect requires --port\n");
    return 2;
  }
  const std::size_t emit = opts.emit > 0 ? opts.emit : 16;
  auto protocol = compile_protocol(opts);
  if (!protocol.ok()) {
    std::fprintf(stderr, "error: %s\n", protocol.error().message.c_str());
    return 1;
  }
  maybe_attach_native(**protocol, opts);
  // The G1 view the random messages are built against — taken from the
  // compiled protocol so it cannot diverge from what serialization uses.
  const Graph& graph = (*protocol)->original();
  auto factory = framer_factory_of(opts);
  if (!factory.ok()) {
    std::fprintf(stderr, "error: %s\n", factory.error().message.c_str());
    return 1;
  }

  // Dial with retries: the smoke tests race this against a server that is
  // still binding its port.
  net::EventLoop loop;
  const net::Endpoint ep{opts.host, opts.port};
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(opts.retry_ms);
  std::unique_ptr<net::Connection> conn;
  for (;;) {
    auto framer = (*factory)();
    if (!framer.ok()) {
      std::fprintf(stderr, "error: %s\n", framer.error().message.c_str());
      return 1;
    }
    auto dialed =
        net::Connector::dial(loop, ep, *protocol, std::move(*framer), {});
    if (dialed.ok()) {
      conn = std::move(*dialed);
      break;
    }
    if (std::chrono::steady_clock::now() >= deadline) {
      std::fprintf(stderr, "error: %s\n", dialed.error().message.c_str());
      return 1;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }

  std::size_t echoed = 0;
  std::size_t parse_errors = 0;
  bool closed = false;
  std::string close_error;
  conn->on_message([&](net::Connection&, Expected<InstPtr> msg) {
    if (!msg.ok()) {
      ++parse_errors;
      std::fprintf(stderr, "echo %zu parse error: %s\n", echoed,
                   msg.error().message.c_str());
      return;
    }
    if (opts.dump) std::fputs(ast::dump(graph, **msg).c_str(), stdout);
    ++echoed;
  });
  conn->on_close([&](net::Connection&, const Error* err) {
    closed = true;
    if (err != nullptr) close_error = err->message;
  });
  if (Status s = conn->open(); !s) {
    std::fprintf(stderr, "error: %s\n", s.error().message.c_str());
    return 1;
  }

  // Emit the batch up front (the loop is not running yet, so sends are
  // race-free; overflow queues drain through EPOLLOUT below).
  Rng rng(opts.msg_seed);
  std::size_t sent = 0;
  for (std::size_t i = 0; i < emit; ++i) {
    InstPtr msg = fuzz::random_message(graph, rng);
    if (Status s = conn->send(*msg, opts.msg_seed + i); !s) {
      std::fprintf(stderr, "message %zu rejected: %s\n", i,
                   s.error().message.c_str());
      continue;
    }
    ++sent;
  }

  const auto echo_deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (echoed + parse_errors < sent && !closed &&
         std::chrono::steady_clock::now() < echo_deadline) {
    loop.run_once(50);
  }
  if (!closed) conn->close();
  for (int i = 0; i < 4 && !closed; ++i) loop.run_once(10);

  std::printf("echoed %zu/%zu messages\n", echoed, sent);
  if (!close_error.empty()) {
    std::fprintf(stderr, "connection error: %s\n", close_error.c_str());
    return 1;
  }
  if (parse_errors > 0) return 1;
  if (opts.expect > 0 && echoed != opts.expect) {
    std::fprintf(stderr, "expected %zu echoes, got %zu\n", opts.expect,
                 echoed);
    return 1;
  }
  return echoed == sent && sent > 0 ? 0 : 1;
}

int cmd_fuzz(const Options& opts) {
  auto graph = load(opts.spec_path);
  if (!graph.ok()) {
    std::fprintf(stderr, "error: %s\n", graph.error().message.c_str());
    return 1;
  }
  ObfuscationConfig cfg;
  cfg.seed = opts.seed;
  cfg.per_node = opts.per_node;
  auto compiled = Framework::generate(*graph, cfg);
  if (!compiled.ok()) {
    std::fprintf(stderr, "error: %s\n", compiled.error().message.c_str());
    return 1;
  }

  // Campaign RNG: --msg-seed, overridable by PROTOOBF_FUZZ_SEED (the same
  // env the test suites honor, so a CI failure line reproduces here too).
  std::uint64_t rng_seed = opts.msg_seed;
  if (const char* env = std::getenv("PROTOOBF_FUZZ_SEED");
      env != nullptr && *env != '\0') {
    rng_seed = std::strtoull(env, nullptr, 0);
  }

  auto mutator = fuzz::WireMutator::create(*compiled, rng_seed);
  if (!mutator.ok()) {
    std::fprintf(stderr, "error: %s\n", mutator.error().message.c_str());
    return 1;
  }

  const bool prefix_capable = stream_safe(compiled->wire_graph()).ok();
  if (opts.chunked && !prefix_capable) {
    std::fprintf(stderr,
                 "error: --chunked needs a stream-safe wire format and "
                 "this compilation is not (try --whole)\n");
    return 1;
  }
  fuzz::FuzzRunner::Config run_cfg;
  run_cfg.whole_message = opts.whole || !prefix_capable;
  fuzz::FuzzRunner runner(*compiled, run_cfg);

  Rng chunks(rng_seed ^ 0xC4A7);
  for (std::size_t i = 0; i < opts.iters; ++i) {
    const fuzz::Mutant m = mutator->next();
    const std::string violation = runner.check(m.wire, chunks);
    if (!violation.empty()) {
      std::fprintf(stderr,
                   "VIOLATION at iter %zu (strategy %s): %s\n%s"
                   "reproduce with PROTOOBF_FUZZ_SEED=%llu\n",
                   i, m.strategy, violation.c_str(),
                   hexdump(m.wire).c_str(),
                   static_cast<unsigned long long>(rng_seed));
      return 1;
    }
  }

  const fuzz::FuzzRunner::Totals& t = runner.totals();
  std::printf(
      "fuzzed %llu inputs (%s): %llu parsed, %llu truncated, %llu "
      "malformed, 0 violations\n",
      static_cast<unsigned long long>(t.inputs),
      run_cfg.whole_message ? "whole-message" : "chunk-split resumed",
      static_cast<unsigned long long>(t.parsed),
      static_cast<unsigned long long>(t.truncated),
      static_cast<unsigned long long>(t.malformed));
  if (!run_cfg.whole_message) {
    std::printf("resume: %llu attempts, %llu resumed, %llu suspensions\n",
                static_cast<unsigned long long>(runner.resume_stats().attempts),
                static_cast<unsigned long long>(runner.resume_stats().resumed),
                static_cast<unsigned long long>(
                    runner.resume_stats().suspensions));
  }
  std::printf("pool: %zu slabs, %zu live (rng seed %llu)\n",
              runner.arena().nodes().stats().slabs,
              runner.arena().nodes().stats().live,
              static_cast<unsigned long long>(rng_seed));
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  Options opts;
  if (!parse_args(argc, argv, opts)) return usage();
  if (opts.command == "validate") return cmd_validate(opts);
  if (opts.command == "graph") return cmd_graph(opts);
  if (opts.command == "obfuscate") return cmd_obfuscate(opts);
  if (opts.command == "codegen") return cmd_codegen(opts);
  if (opts.command == "compile") return cmd_compile(opts);
  if (opts.command == "stream") return cmd_stream(opts);
  if (opts.command == "serve") return cmd_serve(opts);
  if (opts.command == "connect") return cmd_connect(opts);
  if (opts.command == "fuzz") return cmd_fuzz(opts);
  return usage();
}
