// protoobf — command-line front end to the framework.
//
// Commands:
//   protoobf validate <spec-file>
//       Parse and validate a specification; print the graph outline.
//   protoobf graph <spec-file> [--obfuscate SEED:PER_NODE]
//       Print the (optionally obfuscated) message format graph in DOT.
//   protoobf obfuscate <spec-file> --seed N --per-node K
//       Apply transformations; print the journal and the resulting graph.
//   protoobf codegen <spec-file> --seed N --per-node K [-o out.cpp]
//       Generate the serializer/parser library; print the complexity
//       metrics of §VII-B.
//
// Spec files use the ProtoSpec language (see README.md).
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>

#include "codegen/generator.hpp"
#include "core/protoobf.hpp"

namespace {

using namespace protoobf;

int usage() {
  std::fprintf(stderr,
               "usage: protoobf <validate|graph|obfuscate|codegen> "
               "<spec-file> [--seed N] [--per-node K] [-o FILE]\n");
  return 2;
}

struct Options {
  std::string command;
  std::string spec_path;
  std::uint64_t seed = 1;
  int per_node = 1;
  std::string output;
};

bool parse_args(int argc, char** argv, Options& opts) {
  if (argc < 3) return false;
  opts.command = argv[1];
  opts.spec_path = argv[2];
  for (int i = 3; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--seed" && i + 1 < argc) {
      opts.seed = std::strtoull(argv[++i], nullptr, 0);
    } else if (arg == "--per-node" && i + 1 < argc) {
      opts.per_node = std::atoi(argv[++i]);
    } else if (arg == "-o" && i + 1 < argc) {
      opts.output = argv[++i];
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", arg.c_str());
      return false;
    }
  }
  return true;
}

Expected<Graph> load(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Unexpected("cannot open '" + path + "'");
  std::ostringstream text;
  text << in.rdbuf();
  return Framework::load_spec(text.str());
}

int cmd_validate(const Options& opts) {
  auto graph = load(opts.spec_path);
  if (!graph.ok()) {
    std::fprintf(stderr, "error: %s\n", graph.error().message.c_str());
    return 1;
  }
  std::printf("protocol '%s': %zu nodes, depth %zu — OK\n\n",
              graph->protocol_name().c_str(), graph->size(), graph->depth());
  std::fputs(to_outline(*graph).c_str(), stdout);
  return 0;
}

int cmd_graph(const Options& opts) {
  auto graph = load(opts.spec_path);
  if (!graph.ok()) {
    std::fprintf(stderr, "error: %s\n", graph.error().message.c_str());
    return 1;
  }
  if (opts.per_node > 0) {
    ObfuscationConfig cfg;
    cfg.seed = opts.seed;
    cfg.per_node = opts.per_node;
    auto protocol = Framework::generate(*graph, cfg);
    if (!protocol.ok()) {
      std::fprintf(stderr, "error: %s\n", protocol.error().message.c_str());
      return 1;
    }
    std::fputs(to_dot(protocol->wire_graph()).c_str(), stdout);
  } else {
    std::fputs(to_dot(*graph).c_str(), stdout);
  }
  return 0;
}

int cmd_obfuscate(const Options& opts) {
  auto graph = load(opts.spec_path);
  if (!graph.ok()) {
    std::fprintf(stderr, "error: %s\n", graph.error().message.c_str());
    return 1;
  }
  ObfuscationConfig cfg;
  cfg.seed = opts.seed;
  cfg.per_node = opts.per_node;
  auto protocol = Framework::generate(*graph, cfg);
  if (!protocol.ok()) {
    std::fprintf(stderr, "error: %s\n", protocol.error().message.c_str());
    return 1;
  }
  std::printf("# %zu transformations (seed %llu, %d per node)\n",
              protocol->journal().size(),
              static_cast<unsigned long long>(opts.seed), opts.per_node);
  for (const auto& entry : protocol->journal()) {
    std::printf("%s\n", entry.describe(protocol->wire_graph()).c_str());
  }
  std::printf("\n# obfuscated message format\n%s",
              to_outline(protocol->wire_graph()).c_str());
  return 0;
}

int cmd_codegen(const Options& opts) {
  auto graph = load(opts.spec_path);
  if (!graph.ok()) {
    std::fprintf(stderr, "error: %s\n", graph.error().message.c_str());
    return 1;
  }
  ObfuscationConfig cfg;
  cfg.seed = opts.seed;
  cfg.per_node = opts.per_node;
  auto protocol = Framework::generate(*graph, cfg);
  if (!protocol.ok()) {
    std::fprintf(stderr, "error: %s\n", protocol.error().message.c_str());
    return 1;
  }
  const GeneratedCode code = generate_cpp(*protocol);
  std::fprintf(stderr,
               "# %zu lines, %zu structs, call graph size %zu, depth %zu\n",
               code.metrics.lines, code.metrics.structs,
               code.metrics.callgraph_size, code.metrics.callgraph_depth);
  if (opts.output.empty()) {
    std::fputs(code.source.c_str(), stdout);
  } else {
    std::ofstream out(opts.output);
    out << code.source;
    std::fprintf(stderr, "# wrote %s\n", opts.output.c_str());
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  Options opts;
  if (!parse_args(argc, argv, opts)) return usage();
  if (opts.command == "validate") return cmd_validate(opts);
  if (opts.command == "graph") return cmd_graph(opts);
  if (opts.command == "obfuscate") return cmd_obfuscate(opts);
  if (opts.command == "codegen") return cmd_codegen(opts);
  return usage();
}
